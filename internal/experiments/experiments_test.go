package experiments

import (
	"strings"
	"testing"

	"p2prank/internal/engine"
	"p2prank/internal/partition"
)

// Small workload for fast tests; the real presets default bigger.
func smallWorkload() Workload { return Workload{Pages: 3000, Sites: 20, Seed: 1} }

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(smallWorkload(), 16, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("%d curves, want 3 (A, B, C)", len(res.Curves))
	}
	for _, c := range res.Curves {
		if c.Len() < 10 {
			t.Fatalf("curve %q has %d points", c.Name, c.Len())
		}
		first, last := c.Values[0], c.Last()
		if last >= first {
			t.Fatalf("curve %q relative error did not decrease: %v -> %v", c.Name, first, last)
		}
	}
	// Loss (curve B) must converge more slowly than lossless (curve A).
	a, b := res.Curves[0], res.Curves[1]
	if b.Last() < a.Last()*0.2 {
		t.Fatalf("lossy curve B (%v) ended far below lossless A (%v)", b.Last(), a.Last())
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(smallWorkload(), 8, 80)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Curves {
		// Monotone non-decreasing average rank (Theorem 4.1).
		for i := 1; i < c.Len(); i++ {
			if c.Values[i] < c.Values[i-1]-1e-12 {
				t.Fatalf("curve %q decreased at point %d", c.Name, i)
			}
		}
	}
	// Lossless curve reaches the leaky plateau.
	final := res.Curves[0].Last()
	if final < 0.15 || final > 0.45 {
		t.Fatalf("converged average rank %v, want ≈0.3", final)
	}
}

func TestFig8ShapeAndOrdering(t *testing.T) {
	rows, err := Fig8(Workload{Pages: 2500, Sites: 20, Seed: 23}, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.DPR1 >= r.CPR {
			t.Errorf("K=%d: DPR1 %.1f not below CPR %.0f", r.K, r.DPR1, r.CPR)
		}
		if r.DPR2 <= r.DPR1 {
			t.Errorf("K=%d: DPR2 %.1f not above DPR1 %.1f", r.K, r.DPR2, r.DPR1)
		}
	}
	out := RenderFig8(rows)
	if !strings.Contains(out, "DPR1") || !strings.Contains(out, "CPR") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

func TestTransmissionModelAgreement(t *testing.T) {
	rows, err := Transmission(Workload{Pages: 3000, Sites: 30, Seed: 3}, []int{24}, 30)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.IndirectMsgs >= r.DirectMsgs {
		t.Fatalf("indirect %.0f msgs/iter not below direct %.0f at K=24", r.IndirectMsgs, r.DirectMsgs)
	}
	// Measured counts should be the same order of magnitude as the
	// model (the model assumes all pairs talk every iteration; the
	// measurement reflects the actual efferent topology).
	if r.ModelIndirectMsgs <= 0 || r.ModelDirectMsgs <= 0 {
		t.Fatal("model produced non-positive predictions")
	}
	if r.IndirectMsgs > r.ModelIndirectMsgs*20 {
		t.Fatalf("indirect measurement %.0f wildly above model %.0f", r.IndirectMsgs, r.ModelIndirectMsgs)
	}
	out := RenderTransmission(rows)
	if !strings.Contains(out, "model S_it") {
		t.Fatalf("render missing model column:\n%s", out)
	}
}

func TestPartitionCutOrdering(t *testing.T) {
	rows, err := PartitionCut(Workload{Pages: 8000, Sites: 50, Seed: 5}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	var bySite, byPage, random float64
	for _, r := range rows {
		switch r.Strategy {
		case partition.BySite:
			bySite = r.CutFrac
		case partition.ByPage:
			byPage = r.CutFrac
		case partition.Random:
			random = r.CutFrac
		}
	}
	if bySite >= byPage || bySite >= random {
		t.Fatalf("by-site cut %.3f not smallest (by-page %.3f, random %.3f)", bySite, byPage, random)
	}
	out := RenderCut(rows)
	if !strings.Contains(out, "by-site") {
		t.Fatalf("render missing strategy:\n%s", out)
	}
}

func TestOverlayHops(t *testing.T) {
	rows, err := OverlayHops(engine.Pastry, []int{50, 400}, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Hops <= rows[0].Hops {
		t.Fatalf("hops did not grow with N: %+v", rows)
	}
}

func TestValidation(t *testing.T) {
	w := smallWorkload()
	if _, err := Fig6(w, 0, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Fig6(w, 4, 0); err == nil {
		t.Error("maxTime=0 accepted")
	}
	if _, err := Fig8(w, nil); err == nil {
		t.Error("empty ks accepted")
	}
	if _, err := Fig8(w, []int{-1}); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := Transmission(w, nil, 5); err == nil {
		t.Error("empty ks accepted")
	}
	if _, err := Transmission(w, []int{4}, 0); err == nil {
		t.Error("zero time accepted")
	}
	if _, err := PartitionCut(w, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := OverlayHops(engine.Pastry, []int{10}, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestWorkloadDefaults(t *testing.T) {
	var w Workload
	g, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPages() != 20000 || g.NumSites() != 100 {
		t.Fatalf("default workload: %d pages, %d sites", g.NumPages(), g.NumSites())
	}
}

// Bandwidth starvation delays convergence — the measured form of the
// §4.5 constraint.
func TestConvergenceVsBandwidth(t *testing.T) {
	rows, err := ConvergenceVsBandwidth(Workload{Pages: 4000, Sites: 30, Seed: 7}, 12,
		[]float64{0, 50000, 2000, 200}, 600)
	if err != nil {
		t.Fatal(err)
	}
	unlimited, ample, tight, starved := rows[0], rows[1], rows[2], rows[3]
	if unlimited.ConvergedAt < 0 || ample.ConvergedAt < 0 {
		t.Fatalf("well-provisioned runs did not converge: %+v", rows)
	}
	if ample.ConvergedAt < unlimited.ConvergedAt {
		t.Fatalf("finite bandwidth converged before unlimited: %+v", rows)
	}
	// Shrinking the uplink monotonically worsens the error reached by
	// the horizon — the measured form of constraint 4.7.
	if tight.FinalRelErr <= ample.FinalRelErr {
		t.Fatalf("tight uplink not worse than ample: %+v", rows)
	}
	if starved.FinalRelErr <= tight.FinalRelErr {
		t.Fatalf("starved uplink not worse than tight: %+v", rows)
	}
	out := RenderBandwidth(rows)
	if !strings.Contains(out, "unlimited") {
		t.Fatalf("render missing unlimited row:\n%s", out)
	}
}

// Churn sweep: the zero-crash row converges cleanly, churned rows
// still converge and their counters show the recovery machinery ran.
func TestChurnSweep(t *testing.T) {
	rows, err := Churn(smallWorkload(), 8, []int{0, 2}, 600)
	if err != nil {
		t.Fatal(err)
	}
	calm, churned := rows[0], rows[1]
	if calm.ConvergedAt < 0 || churned.ConvergedAt < 0 {
		t.Fatalf("runs did not converge: %+v", rows)
	}
	if calm.Recoveries != 0 || churned.Recoveries != 2 {
		t.Fatalf("recoveries = %d and %d, want 0 and 2", calm.Recoveries, churned.Recoveries)
	}
	if churned.Retries == 0 || churned.Acks == 0 {
		t.Fatalf("churned row never exercised the reliable layer: %+v", churned)
	}
	out := RenderChurn(rows)
	if !strings.Contains(out, "recoveries") {
		t.Fatalf("render missing recoveries column:\n%s", out)
	}
}

func TestChurnValidation(t *testing.T) {
	w := smallWorkload()
	if _, err := Churn(w, 0, []int{0}, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Churn(w, 4, nil, 10); err == nil {
		t.Error("empty crash list accepted")
	}
	if _, err := Churn(w, 4, []int{4}, 10); err == nil {
		t.Error("crashes >= k accepted")
	}
}

func TestConvergenceVsBandwidthValidation(t *testing.T) {
	w := smallWorkload()
	if _, err := ConvergenceVsBandwidth(w, 0, []float64{0}, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ConvergenceVsBandwidth(w, 4, nil, 10); err == nil {
		t.Error("empty bandwidth list accepted")
	}
	if _, err := ConvergenceVsBandwidth(w, 4, []float64{-1}, 10); err == nil {
		t.Error("negative bandwidth accepted")
	}
}
