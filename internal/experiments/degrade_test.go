package experiments

import (
	"strings"
	"testing"

	"p2prank/internal/search"
)

// runDegradeBench drives a bench's whole storm the way cmd/dprsim does,
// minus the timing.
func runDegradeBench(t *testing.T, part, strag float64) DegradeRow {
	t.Helper()
	const k, queries = 32, 800
	b, err := NewDegradeBench(ServeWorkload(k, 7), k, queries, part, strag)
	if err != nil {
		t.Fatal(err)
	}
	var resp search.Response
	for i, req := range b.Queries() {
		if err := b.Advance(i); err != nil {
			t.Fatal(err)
		}
		serveErr := b.Serve(req, &resp)
		if err := b.Record(i, req, &resp, serveErr); err != nil {
			t.Fatalf("query %d %v: %v", i, req.Terms, err)
		}
	}
	return b.Finish()
}

func TestDegradeBenchFaultFreeControl(t *testing.T) {
	row := runDegradeBench(t, 0, 0)
	if row.Shed != 0 || row.Unavailable != 0 || row.Degraded != 0 || row.Hedged != 0 {
		t.Fatalf("fault-free row not clean: %+v", row)
	}
	if row.Answered != row.Queries {
		t.Fatalf("answered %d of %d with no faults", row.Answered, row.Queries)
	}
	if row.RecoveryQueries != 0 {
		t.Fatalf("RecoveryQueries = %d, want immediate full coverage", row.RecoveryQueries)
	}
}

func TestDegradeBenchPartitionDegradesShedsRecovers(t *testing.T) {
	row := runDegradeBench(t, 0.3, 0)
	if row.Degraded == 0 {
		t.Fatal("30% partition produced no partial-coverage answers")
	}
	if row.MeanCoverage <= 0 || row.MeanCoverage >= 1 {
		t.Fatalf("MeanCoverage = %v, want a real fraction", row.MeanCoverage)
	}
	if row.RankErr <= 0 || row.RankErr >= 1 {
		t.Fatalf("RankErr = %v, want a real recall loss", row.RankErr)
	}
	if row.Shed == 0 {
		t.Fatal("staleness past the bound shed nothing")
	}
	if row.RecoveryQueries <= 0 {
		t.Fatalf("RecoveryQueries = %d, want a measurable publish catch-up", row.RecoveryQueries)
	}
	if got := row.Answered + row.Shed + row.Unavailable; got != row.Queries {
		t.Fatalf("outcomes %d do not partition the %d-query storm", got, row.Queries)
	}
}

func TestDegradeBenchStragglersHedge(t *testing.T) {
	row := runDegradeBench(t, 0, 0.25)
	if row.Hedged == 0 {
		t.Fatal("straggling shards never hedged to the replica")
	}
	if row.Shed != 0 || row.Degraded != 0 {
		t.Fatalf("stragglers alone must not shed or degrade: %+v", row)
	}
}

func TestDegradeBenchDeterministic(t *testing.T) {
	a := runDegradeBench(t, 0.3, 0.25)
	b := runDegradeBench(t, 0.3, 0.25)
	if a != b {
		t.Fatalf("degrade rows differ across identical runs:\n%+v\n%+v", a, b)
	}
}

func TestRenderDegrade(t *testing.T) {
	out := RenderDegrade([]DegradeRow{runDegradeBench(t, 0.3, 0.25)})
	for _, col := range []string{"part", "shed", "coverage", "rank err", "recovery"} {
		if !strings.Contains(out, col) {
			t.Fatalf("rendered table missing %q column:\n%s", col, out)
		}
	}
}

func TestDegradeBenchValidation(t *testing.T) {
	if _, err := NewDegradeBench(ServeWorkload(8, 1), 8, 16, 0.3, 0); err == nil {
		t.Fatal("accepted a storm too short for the schedule")
	}
}
