package experiments

import (
	"fmt"

	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/metrics"
	"p2prank/internal/overlay"
	"p2prank/internal/pagerank"
	"p2prank/internal/partition"
	"p2prank/internal/search"
	"p2prank/internal/serve"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
	"p2prank/internal/xrand"
)

// ServeBench is the deterministic half of the serving experiment: a
// ranked crawl sharded over K rankers, snapshots published through the
// real checkpoint seam (EncodeRankSnapshot → Publisher.Save), and a
// pre-drawn query workload. The wall-clock half — actually timing the
// query storm — lives in cmd/dprsim: this package is in the
// nowallclock analyzer's scope, like the rest of the simulation path.
type ServeBench struct {
	K     int
	Pages int

	fe     *serve.Frontend
	store  *serve.Store
	pub    *serve.Publisher
	assign *partition.Assignment
	ranks  vecmath.Vec
	graph  webgraph.Store
	ov     overlay.Network
	text   search.Config

	queries []search.Request
	terms   []int32 // backing array for all query term slices
	round   int64
	encBuf  []byte
	scores  []float64
}

// ServeWorkload returns the crawl for a K-ranker serving bench: the
// scale-sweep ratio of 20 pages per ranker, hash-partitioned so every
// ranker serves a shard.
func ServeWorkload(k int, seed uint64) Workload {
	return ScaleWorkload(k, seed)
}

// NewServeBench ranks the workload centrally (the serving tier is
// downstream of ranking; how the ranks were computed is irrelevant to
// query cost), builds the overlay and hash partition, publishes every
// shard at round 1 through the checkpoint seam, and pre-draws queries:
// 1–3 terms each, term popularity skewed quartically toward the low
// vocabulary ids so the cache has something to hit.
func NewServeBench(w Workload, k, queries int) (*ServeBench, error) {
	if k <= 0 {
		return nil, fmt.Errorf("experiments: serve k = %d, must be positive", k)
	}
	if queries <= 0 {
		return nil, fmt.Errorf("experiments: serve queries = %d, must be positive", queries)
	}
	w.defaults()
	g, err := w.Generate()
	if err != nil {
		return nil, err
	}
	res, err := pagerank.Open(g, pagerank.Defaults())
	if err != nil {
		return nil, err
	}
	ov, err := engine.BuildOverlay(engine.Pastry, k)
	if err != nil {
		return nil, err
	}
	assign, err := partition.Assign(g, ov, partition.ByPage, w.Seed)
	if err != nil {
		return nil, err
	}
	store, err := serve.NewStore(k)
	if err != nil {
		return nil, err
	}
	text := search.DefaultConfig()
	// Keep per-term posting lists (and so shards-per-query) roughly
	// constant as the crawl scales.
	if v := w.Pages / 40; v > text.Vocabulary {
		text.Vocabulary = v
	}
	b := &ServeBench{
		K:      k,
		Pages:  w.Pages,
		store:  store,
		pub:    serve.NewPublisher(store, nil),
		assign: assign,
		ranks:  res.Ranks,
		graph:  g,
		ov:     ov,
		text:   text,
	}
	if err := b.Republish(); err != nil {
		return nil, err
	}
	fe, err := serve.NewFrontend(g, ov, assign, store, serve.Config{Text: text})
	if err != nil {
		return nil, err
	}
	b.fe = fe

	rng := xrand.New(w.Seed ^ 0x5e12e)
	b.terms = make([]int32, 0, queries*2)
	b.queries = make([]search.Request, queries)
	vocab := int(text.Vocabulary)
	for i := range b.queries {
		n := 1 + rng.Intn(3)
		start := len(b.terms)
		for len(b.terms)-start < n {
			f := rng.Float64()
			f *= f
			t := int32(f * f * float64(vocab)) // quartic skew toward low ids
			dup := false
			for _, prev := range b.terms[start:] {
				if prev == t {
					dup = true
					break
				}
			}
			if !dup {
				b.terms = append(b.terms, t)
			}
		}
		b.queries[i] = search.Request{Terms: b.terms[start:len(b.terms):len(b.terms)], K: 10}
	}
	return b, nil
}

// Frontend returns the query tier.
func (b *ServeBench) Frontend() *serve.Frontend { return b.fe }

// Store returns the snapshot store.
func (b *ServeBench) Store() *serve.Store { return b.store }

// Queries returns the pre-drawn workload; callers must not mutate it.
func (b *ServeBench) Queries() []search.Request { return b.queries }

// Tick advances every shard's staleness clock by one round, standing in
// for the rankers' ComputeEnd hooks.
func (b *ServeBench) Tick() {
	for s := 0; s < b.K; s++ {
		b.store.Advance(s)
	}
}

// Republish pushes every shard's rank slice at the next round through
// the DPRS checkpoint encoding — the same bytes a ranker's
// Checkpoint.Sink would carry — resetting staleness and minting K new
// versions.
func (b *ServeBench) Republish() error {
	b.round++
	for s := 0; s < b.K; s++ {
		b.scores = b.scores[:0]
		for _, p := range b.assign.Pages[s] {
			b.scores = append(b.scores, b.ranks[p])
		}
		b.encBuf = dprcore.EncodeRankSnapshot(b.encBuf[:0], s, b.round, b.scores)
		if err := b.pub.Save(s, b.round, b.encBuf); err != nil {
			return fmt.Errorf("experiments: republish shard %d: %w", s, err)
		}
	}
	return nil
}

// ServeRow is one K of the serving sweep. The deterministic fields
// come from Finish; WallSeconds, AchievedQPS, and the latency
// percentiles are filled by the caller (cmd/dprsim) from its own
// timing samples.
type ServeRow struct {
	K       int
	Pages   int
	Queries int64
	// Results is the total postings returned; a zero total would mean
	// the sweep measured empty intersections.
	Results int64
	// CacheHits and CacheMisses are the frontend cache's counters.
	CacheHits   int64
	CacheMisses int64
	// MeanShards and MeanHops are per-query averages from the Cost
	// accounting: partial-result fan-out and overlay distance.
	MeanShards float64
	MeanHops   float64
	// MaxStaleness is the worst served staleness observed.
	MaxStaleness int64

	// Caller-measured (see type comment).
	WallSeconds float64
	AchievedQPS float64
	P50Micros   float64
	P99Micros   float64
}

// Finish folds the bench's own counters plus the caller's per-query
// cost totals into a row.
func (b *ServeBench) Finish(queries, results, shards, hops int64, maxStaleness int64) ServeRow {
	hits, misses := b.fe.CacheStats()
	row := ServeRow{
		K:            b.K,
		Pages:        b.Pages,
		Queries:      queries,
		Results:      results,
		CacheHits:    hits,
		CacheMisses:  misses,
		MaxStaleness: maxStaleness,
	}
	if queries > 0 {
		row.MeanShards = float64(shards) / float64(queries)
		row.MeanHops = float64(hops) / float64(queries)
	}
	return row
}

// LatencyMicros converts a seconds sample set to the two headline
// percentiles in microseconds.
func LatencyMicros(latSeconds []float64) (p50, p99 float64) {
	return metrics.Percentile(latSeconds, 50) * 1e6, metrics.Percentile(latSeconds, 99) * 1e6
}

// RenderServe formats the serving sweep.
func RenderServe(rows []ServeRow) string {
	t := metrics.NewTable("K", "pages", "queries", "hit rate", "shards/q",
		"hops/q", "max stale", "QPS", "p50", "p99", "wall")
	for _, r := range rows {
		total := r.CacheHits + r.CacheMisses
		hitRate := 0.0
		if total > 0 {
			hitRate = float64(r.CacheHits) / float64(total)
		}
		t.AddRow(r.K, r.Pages, r.Queries,
			fmt.Sprintf("%.0f%%", 100*hitRate),
			fmt.Sprintf("%.1f", r.MeanShards),
			fmt.Sprintf("%.1f", r.MeanHops),
			r.MaxStaleness,
			fmt.Sprintf("%.0f", r.AchievedQPS),
			fmt.Sprintf("%.0fµs", r.P50Micros),
			fmt.Sprintf("%.0fµs", r.P99Micros),
			fmt.Sprintf("%.1fs", r.WallSeconds))
	}
	return t.String()
}
