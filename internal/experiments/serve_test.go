package experiments

import (
	"strings"
	"testing"

	"p2prank/internal/search"
)

func TestServeBenchDeterministicAndServable(t *testing.T) {
	w := ServeWorkload(16, 7)
	b, err := NewServeBench(w, 16, 200)
	if err != nil {
		t.Fatal(err)
	}
	if b.K != 16 || b.Pages != 320 {
		t.Fatalf("bench sized K=%d pages=%d", b.K, b.Pages)
	}
	if len(b.Queries()) != 200 {
		t.Fatalf("got %d queries", len(b.Queries()))
	}
	for i, q := range b.Queries() {
		if len(q.Terms) < 1 || len(q.Terms) > 3 {
			t.Fatalf("query %d has %d terms", i, len(q.Terms))
		}
	}

	// Same seed, same workload: the query plan must be identical.
	b2, err := NewServeBench(w, 16, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Queries() {
		a, c := b.Queries()[i], b2.Queries()[i]
		if len(a.Terms) != len(c.Terms) {
			t.Fatalf("query %d nondeterministic", i)
		}
		for j := range a.Terms {
			if a.Terms[j] != c.Terms[j] {
				t.Fatalf("query %d term %d: %d vs %d", i, j, a.Terms[j], c.Terms[j])
			}
		}
	}

	// Run the workload; track cost totals like cmd/dprsim does.
	q := b.Frontend().NewQuerier()
	var resp search.Response
	var results, shards, hops, maxStale int64
	for _, req := range b.Queries() {
		if err := q.Serve(req, &resp); err != nil {
			t.Fatalf("query %v: %v", req.Terms, err)
		}
		results += int64(len(resp.Postings))
		shards += int64(resp.Cost.Responses)
		hops += int64(resp.Cost.LookupHops)
		if resp.Staleness > maxStale {
			maxStale = resp.Staleness
		}
	}
	if results == 0 {
		t.Fatal("workload produced no results at all")
	}

	// Staleness machinery: three ticks then a republish.
	b.Tick()
	b.Tick()
	b.Tick()
	if s := b.Store().MaxStaleness(); s != 3 {
		t.Fatalf("staleness after 3 ticks = %d", s)
	}
	v := b.Store().Version()
	if err := b.Republish(); err != nil {
		t.Fatal(err)
	}
	if s := b.Store().MaxStaleness(); s != 0 {
		t.Fatalf("staleness after republish = %d", s)
	}
	if nv := b.Store().Version(); nv != v+16 {
		t.Fatalf("republish minted %d versions, want 16", nv-v)
	}

	row := b.Finish(int64(len(b.Queries())), results, shards, hops, maxStale)
	row.WallSeconds = 0.5
	row.AchievedQPS = 400
	row.P50Micros, row.P99Micros = LatencyMicros([]float64{100e-6, 200e-6, 300e-6})
	if row.MeanShards <= 0 || row.Results != results {
		t.Fatalf("row not folded: %+v", row)
	}
	out := RenderServe([]ServeRow{row})
	for _, want := range []string{"hit rate", "shards/q", "max stale", "p99", "16"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestServeBenchValidation(t *testing.T) {
	if _, err := NewServeBench(ServeWorkload(4, 1), 0, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewServeBench(ServeWorkload(4, 1), 4, 0); err == nil {
		t.Fatal("queries=0 accepted")
	}
}
