package vecmath

import (
	"fmt"

	"p2prank/internal/par"
)

// CSR is a compressed-sparse-row matrix. Row i's entries occupy
// Cols[RowPtr[i]:RowPtr[i+1]] with values Vals[RowPtr[i]:RowPtr[i+1]].
//
// The PageRank solvers use CSR for the (transposed) transition matrix A
// of §3: A[u][v] = α/d(u) when u links to v. Storing the transpose (rows
// indexed by destination) makes the Jacobi step R ← AR + f a clean
// row-gather.
//
// Parallelism: construction precomputes NNZ-balanced row-shard
// boundaries (a pure function of the matrix, never of GOMAXPROCS).
// Matrix-vector products run one shard per worker writing disjoint
// destination rows, and norm reductions combine per-shard partials in
// shard order, so every kernel is bit-identical to its serial execution
// at any worker count — see internal/par and DESIGN.md §8.
type CSR struct {
	NumRows int
	NumCols int
	RowPtr  []int64
	Cols    []int32
	Vals    []float64

	// shardPtr are the precomputed row-shard boundaries
	// (shardPtr[0] = 0 … shardPtr[len-1] = NumRows). A nil slice — e.g.
	// on a hand-built literal — degrades to one serial shard.
	shardPtr []int32
}

// defaultCSRShards is the row-shard count boundaries are computed for.
// It is deliberately independent of GOMAXPROCS: more shards than
// workers just means a little work-stealing slack, while tying it to
// the core count would make the boundary set machine-dependent.
var defaultCSRShards = 16

// SetDefaultCSRShards overrides the shard count used by subsequently
// built matrices and returns the previous value. Kernels are
// bit-identical at any shard count (products write disjoint rows; the
// only CSR reduction is an exact max), so this is a testing knob for
// the determinism suite, not a tuning surface. Values are clamped to
// [1, 64]. Not safe to call concurrently with matrix construction.
func SetDefaultCSRShards(n int) int {
	prev := defaultCSRShards
	switch {
	case n < 1:
		n = 1
	case n > 64:
		n = 64
	}
	defaultCSRShards = n
	return prev
}

// csrParMinNNZ is the matrix size below which kernels stay on the
// calling goroutine: the simulator's per-group systems are a few
// hundred entries, where pool dispatch costs more than the row loop.
const csrParMinNNZ = 1 << 14

// Entry is one (row, col, value) triple used when building a CSR matrix.
type Entry struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a CSR matrix from unordered entries. Duplicate
// (row, col) entries are summed. It returns an error if any index is out
// of bounds.
//
// Assembly is a two-pass counting sort (by column, then stably by row)
// followed by a linear duplicate-merging sweep: O(entries + rows +
// cols) with no comparator calls, which matters because graph build is
// the startup bottleneck for million-page crawls.
func NewCSR(rows, cols int, entries []Entry) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("vecmath: negative dimension %dx%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("vecmath: entry (%d,%d) out of bounds for %dx%d matrix",
				e.Row, e.Col, rows, cols)
		}
	}
	sorted := countingSortEntries(rows, cols, entries)
	m := &CSR{
		NumRows: rows,
		NumCols: cols,
		RowPtr:  make([]int64, rows+1),
	}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		m.Cols = append(m.Cols, int32(sorted[i].Col))
		m.Vals = append(m.Vals, v)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	m.computeShards()
	return m, nil
}

// NewCSRSorted assembles a CSR matrix from pre-sorted per-row data:
// rowPtr delimits each row's span in colIdx/vals, and within a row
// colIdx must be non-decreasing. Adjacent equal columns are summed in
// order, producing exactly the matrix NewCSR would build from the same
// entries. The slices are taken over (and compacted in place when
// duplicates merge), so callers must not reuse them afterwards.
//
// This is the streaming-construction path: a producer that can emit
// entries already grouped by row — like the transition build
// scattering over a graph's OutPtr windows — skips NewCSR's transient
// Entry slice (24 bytes per link) entirely, which is what keeps
// multi-million-page solver setup within the graph's own footprint.
func NewCSRSorted(rows, cols int, rowPtr []int64, colIdx []int32, vals []float64) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("vecmath: negative dimension %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("vecmath: rowPtr has length %d, want %d", len(rowPtr), rows+1)
	}
	if len(colIdx) != len(vals) {
		return nil, fmt.Errorf("vecmath: %d columns but %d values", len(colIdx), len(vals))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != int64(len(colIdx)) {
		return nil, fmt.Errorf("vecmath: rowPtr endpoints [%d,%d] disagree with %d entries",
			rowPtr[0], rowPtr[rows], len(colIdx))
	}
	w := int64(0)
	for r := 0; r < rows; r++ {
		lo, hi := rowPtr[r], rowPtr[r+1]
		if lo > hi {
			return nil, fmt.Errorf("vecmath: rowPtr not monotone at row %d", r)
		}
		start := w
		prev := int32(-1)
		for k := lo; k < hi; {
			c := colIdx[k]
			if c < 0 || int(c) >= cols {
				return nil, fmt.Errorf("vecmath: entry (%d,%d) out of bounds for %dx%d matrix", r, c, rows, cols)
			}
			if c < prev {
				return nil, fmt.Errorf("vecmath: row %d columns not sorted (%d after %d)", r, c, prev)
			}
			prev = c
			v := vals[k]
			k++
			for k < hi && colIdx[k] == c {
				v += vals[k]
				k++
			}
			colIdx[w] = c
			vals[w] = v
			w++
		}
		rowPtr[r] = start
	}
	rowPtr[rows] = w
	m := &CSR{
		NumRows: rows,
		NumCols: cols,
		RowPtr:  rowPtr,
		Cols:    colIdx[:w],
		Vals:    vals[:w],
	}
	m.computeShards()
	return m, nil
}

// countingSortEntries returns entries ordered by (row, col) using two
// stable counting-sort passes: first by column, then by row. Stability
// of the second pass preserves the column order established by the
// first.
func countingSortEntries(rows, cols int, entries []Entry) []Entry {
	if len(entries) == 0 {
		return nil
	}
	byCol := make([]Entry, len(entries))
	count := make([]int64, max64(rows, cols)+1)

	// Pass 1: stable scatter by column.
	for i := range entries {
		count[entries[i].Col+1]++
	}
	for c := 0; c < cols; c++ {
		count[c+1] += count[c]
	}
	for i := range entries {
		pos := count[entries[i].Col]
		count[entries[i].Col]++
		byCol[pos] = entries[i]
	}

	// Pass 2: stable scatter by row.
	clear(count)
	byRow := make([]Entry, len(entries))
	for i := range byCol {
		count[byCol[i].Row+1]++
	}
	for r := 0; r < rows; r++ {
		count[r+1] += count[r]
	}
	for i := range byCol {
		pos := count[byCol[i].Row]
		count[byCol[i].Row]++
		byRow[pos] = byCol[i]
	}
	return byRow
}

func max64(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// computeShards fixes the NNZ-balanced row-shard boundaries. RowPtr is
// already the NNZ prefix-weight array SplitPrefix wants.
func (m *CSR) computeShards() {
	m.shardPtr = par.SplitPrefix(m.RowPtr, defaultCSRShards)
}

// oneShard reports whether kernels should stay on the calling
// goroutine: either no precomputed boundaries (hand-built literal) or
// too little work to pay for pool dispatch. The simulator's per-group
// systems are a few hundred entries, squarely in this regime — and the
// serial path allocates nothing, not even a closure.
func (m *CSR) oneShard() bool {
	return len(m.shardPtr) < 3 || len(m.Vals) < csrParMinNNZ
}

// forEachShard runs f over the precomputed row shards on the pool.
// Each invocation covers a disjoint row span, so f may write dst rows
// freely. Callers handle the oneShard fast path themselves.
func (m *CSR) forEachShard(f func(lo, hi int)) {
	sp := m.shardPtr
	//p2plint:allow hotalloc -- shard-index adapter closure, one per parallel dispatch
	par.Default().Run(len(sp)-1, func(s int) {
		f(int(sp[s]), int(sp[s+1]))
	})
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// Row returns the column indices and values of row i.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Cols[lo:hi], m.Vals[lo:hi]
}

// MulVec computes dst = M·x. dst and x must not alias. It panics on
// dimension mismatch.
//
//p2plint:hotpath -- per-iteration rank kernel, steady state must not allocate
func (m *CSR) MulVec(dst, x Vec) {
	mustSameLen(len(dst), m.NumRows)
	mustSameLen(len(x), m.NumCols)
	if m.oneShard() {
		m.mulVecRange(dst, x, 0, m.NumRows)
		return
	}
	//p2plint:allow hotalloc -- par fan-out above csrParMinNNZ; one closure amortized over ≥16K entries
	m.forEachShard(func(lo, hi int) { m.mulVecRange(dst, x, lo, hi) })
}

func (m *CSR) mulVecRange(dst, x Vec, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = m.rowDot(i, x)
	}
}

// MulVecAdd computes dst += M·x without zeroing dst first.
//
//p2plint:hotpath -- per-iteration rank kernel, steady state must not allocate
func (m *CSR) MulVecAdd(dst, x Vec) {
	mustSameLen(len(dst), m.NumRows)
	mustSameLen(len(x), m.NumCols)
	if m.oneShard() {
		m.mulVecAddRange(dst, x, 0, m.NumRows)
		return
	}
	//p2plint:allow hotalloc -- par fan-out above csrParMinNNZ; one closure amortized over ≥16K entries
	m.forEachShard(func(lo, hi int) { m.mulVecAddRange(dst, x, lo, hi) })
}

func (m *CSR) mulVecAddRange(dst, x Vec, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] += m.rowDot(i, x)
	}
}

// StepInto computes dst = M·x + e (+ xa when non-nil) in one fused
// pass — the full Jacobi step R ← AR + βE + X of Algorithm 2 without
// the two extra memory sweeps of MulVec-then-Add-then-Add. The
// floating-point association matches the unfused form exactly:
// (rowdot + e[i]) + xa[i].
//
//p2plint:hotpath -- fused Jacobi step, the innermost loop of Algorithm 2
func (m *CSR) StepInto(dst, x, e, xa Vec) {
	mustSameLen(len(dst), m.NumRows)
	mustSameLen(len(x), m.NumCols)
	mustSameLen(len(e), m.NumRows)
	if xa != nil {
		mustSameLen(len(xa), m.NumRows)
	}
	if m.oneShard() {
		m.stepRange(dst, x, e, xa, 0, m.NumRows)
		return
	}
	//p2plint:allow hotalloc -- par fan-out above csrParMinNNZ; one closure amortized over ≥16K entries
	m.forEachShard(func(lo, hi int) { m.stepRange(dst, x, e, xa, lo, hi) })
}

func (m *CSR) stepRange(dst, x, e, xa Vec, lo, hi int) {
	if xa == nil {
		for i := lo; i < hi; i++ {
			dst[i] = m.rowDot(i, x) + e[i]
		}
		return
	}
	for i := lo; i < hi; i++ {
		dst[i] = m.rowDot(i, x) + e[i] + xa[i]
	}
}

// StepDelta performs the Jacobi step dst = M·x + e (+ xa) and returns
// ‖dst − x‖₁ — the iterate-and-measure body of GroupPageRank
// (Algorithm 2) in, for small systems, a single memory sweep. M must be
// square with x playing both the multiplicand and the previous iterate.
//
// Bit-compatibility: for n ≤ vecBlock the fused loop accumulates the
// delta in ascending index order, exactly like Diff1's single-block
// path; larger systems fall back to StepInto + Diff1, whose blocked
// reduction is a pure function of n. Either way the result is
// independent of sharding and worker count.
//
//p2plint:hotpath -- iterate-and-measure body of GroupPageRank, runs every round
func (m *CSR) StepDelta(dst, x, e, xa Vec) float64 {
	mustSameLen(m.NumRows, m.NumCols)
	if m.NumRows > vecBlock {
		m.StepInto(dst, x, e, xa)
		return Diff1(dst, x)
	}
	mustSameLen(len(dst), m.NumRows)
	mustSameLen(len(x), m.NumCols)
	mustSameLen(len(e), m.NumRows)
	delta := 0.0
	if xa == nil {
		for i := 0; i < m.NumRows; i++ {
			v := m.rowDot(i, x) + e[i]
			dst[i] = v
			delta += abs(v - x[i])
		}
		return delta
	}
	mustSameLen(len(xa), m.NumRows)
	for i := 0; i < m.NumRows; i++ {
		v := m.rowDot(i, x) + e[i] + xa[i]
		dst[i] = v
		delta += abs(v - x[i])
	}
	return delta
}

// abs avoids the math.Abs call overhead in the fused loop; identical
// semantics for the finite values rank math produces.
func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// rowDot is the row-gather kernel shared by every product. The
// reslicing lets the compiler drop bounds checks in the hot loop.
func (m *CSR) rowDot(i int, x Vec) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	cols := m.Cols[lo:hi]
	// Reslicing vals to cols' length lets the compiler drop the bounds
	// check on vals[k] inside the hot loop.
	vals := m.Vals[lo:hi][:len(cols)]
	s := 0.0
	for k, c := range cols {
		s += vals[k] * x[c]
	}
	return s
}

// NormInf returns ‖M‖∞ = max over rows of the L1 norm of the row. By
// Theorem 3.2 of the paper this bounds the spectral radius ρ(M), which is
// how Algorithm 2's convergence is certified (‖A‖∞ ≤ α < 1). Max is an
// exact reduction, so the per-shard combine cannot perturb bits.
//
//p2plint:hotpath -- convergence certificate, recomputed on every incremental update
func (m *CSR) NormInf() float64 {
	sp := m.shardPtr
	if m.oneShard() {
		return m.normInfRange(0, m.NumRows)
	}
	var partials [64]float64
	//p2plint:allow hotalloc -- par fan-out above csrParMinNNZ; one closure amortized over ≥16K entries
	par.Default().Run(len(sp)-1, func(s int) {
		partials[s] = m.normInfRange(int(sp[s]), int(sp[s+1]))
	})
	max := 0.0
	for s := 0; s+1 < len(sp); s++ {
		if partials[s] > max {
			max = partials[s]
		}
	}
	return max
}

func (m *CSR) normInfRange(lo, hi int) float64 {
	max := 0.0
	for i := lo; i < hi; i++ {
		a, b := m.RowPtr[i], m.RowPtr[i+1]
		s := 0.0
		for _, v := range m.Vals[a:b] {
			if v < 0 {
				v = -v
			}
			s += v
		}
		if s > max {
			max = s
		}
	}
	return max
}

// Transpose returns Mᵀ.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		NumRows: m.NumCols,
		NumCols: m.NumRows,
		RowPtr:  make([]int64, m.NumCols+1),
		Cols:    make([]int32, len(m.Cols)),
		Vals:    make([]float64, len(m.Vals)),
	}
	// Count entries per transposed row.
	for _, c := range m.Cols {
		t.RowPtr[c+1]++
	}
	for i := 0; i < t.NumRows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int64, t.NumRows)
	copy(next, t.RowPtr[:t.NumRows])
	for i := 0; i < m.NumRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			c := m.Cols[k]
			pos := next[c]
			next[c]++
			t.Cols[pos] = int32(i)
			t.Vals[pos] = m.Vals[k]
		}
	}
	t.computeShards()
	return t
}
