package vecmath

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix. Row i's entries occupy
// Cols[RowPtr[i]:RowPtr[i+1]] with values Vals[RowPtr[i]:RowPtr[i+1]].
//
// The PageRank solvers use CSR for the (transposed) transition matrix A
// of §3: A[u][v] = α/d(u) when u links to v. Storing the transpose (rows
// indexed by destination) makes the Jacobi step R ← AR + f a clean
// row-gather.
type CSR struct {
	NumRows int
	NumCols int
	RowPtr  []int64
	Cols    []int32
	Vals    []float64
}

// Entry is one (row, col, value) triple used when building a CSR matrix.
type Entry struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a CSR matrix from unordered entries. Duplicate
// (row, col) entries are summed. It returns an error if any index is out
// of bounds.
func NewCSR(rows, cols int, entries []Entry) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("vecmath: negative dimension %dx%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("vecmath: entry (%d,%d) out of bounds for %dx%d matrix",
				e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{
		NumRows: rows,
		NumCols: cols,
		RowPtr:  make([]int64, rows+1),
	}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		m.Cols = append(m.Cols, int32(sorted[i].Col))
		m.Vals = append(m.Vals, v)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m, nil
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// Row returns the column indices and values of row i.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Cols[lo:hi], m.Vals[lo:hi]
}

// MulVec computes dst = M·x. dst and x must not alias. It panics on
// dimension mismatch.
func (m *CSR) MulVec(dst, x Vec) {
	mustSameLen(len(dst), m.NumRows)
	mustSameLen(len(x), m.NumCols)
	for i := 0; i < m.NumRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		s := 0.0
		for k := lo; k < hi; k++ {
			s += m.Vals[k] * x[m.Cols[k]]
		}
		dst[i] = s
	}
}

// MulVecAdd computes dst += M·x without zeroing dst first.
func (m *CSR) MulVecAdd(dst, x Vec) {
	mustSameLen(len(dst), m.NumRows)
	mustSameLen(len(x), m.NumCols)
	for i := 0; i < m.NumRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		s := 0.0
		for k := lo; k < hi; k++ {
			s += m.Vals[k] * x[m.Cols[k]]
		}
		dst[i] += s
	}
}

// NormInf returns ‖M‖∞ = max over rows of the L1 norm of the row. By
// Theorem 3.2 of the paper this bounds the spectral radius ρ(M), which is
// how Algorithm 2's convergence is certified (‖A‖∞ ≤ α < 1).
func (m *CSR) NormInf() float64 {
	max := 0.0
	for i := 0; i < m.NumRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		s := 0.0
		for k := lo; k < hi; k++ {
			v := m.Vals[k]
			if v < 0 {
				v = -v
			}
			s += v
		}
		if s > max {
			max = s
		}
	}
	return max
}

// Transpose returns Mᵀ.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		NumRows: m.NumCols,
		NumCols: m.NumRows,
		RowPtr:  make([]int64, m.NumCols+1),
		Cols:    make([]int32, len(m.Cols)),
		Vals:    make([]float64, len(m.Vals)),
	}
	// Count entries per transposed row.
	for _, c := range m.Cols {
		t.RowPtr[c+1]++
	}
	for i := 0; i < t.NumRows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int64, t.NumRows)
	copy(next, t.RowPtr[:t.NumRows])
	for i := 0; i < m.NumRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			c := m.Cols[k]
			pos := next[c]
			next[c]++
			t.Cols[pos] = int32(i)
			t.Vals[pos] = m.Vals[k]
		}
	}
	return t
}
