package vecmath

import (
	"math"
	"testing"
	"testing/quick"

	"p2prank/internal/xrand"
)

func TestConstAndFill(t *testing.T) {
	x := Const(5, 2.5)
	for _, v := range x {
		if v != 2.5 {
			t.Fatalf("Const produced %v", x)
		}
	}
	x.Fill(-1)
	for _, v := range x {
		if v != -1 {
			t.Fatalf("Fill produced %v", x)
		}
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatalf("Zero produced %v", x)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	x := Vec{1, 2, 3}
	y := x.Clone()
	y[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestSumMeanNorms(t *testing.T) {
	x := Vec{1, -2, 3}
	if got := x.Sum(); got != 2 {
		t.Errorf("Sum = %v", got)
	}
	if got := x.Mean(); math.Abs(got-2.0/3.0) > 1e-15 {
		t.Errorf("Mean = %v", got)
	}
	if got := x.Norm1(); got != 6 {
		t.Errorf("Norm1 = %v", got)
	}
	if got := x.NormInf(); got != 3 {
		t.Errorf("NormInf = %v", got)
	}
}

func TestEmptyVec(t *testing.T) {
	var x Vec
	if x.Mean() != 0 || x.Sum() != 0 || x.Norm1() != 0 || x.NormInf() != 0 {
		t.Fatal("empty vector stats not all zero")
	}
	if !math.IsInf(x.Min(), 1) || !math.IsInf(x.Max(), -1) {
		t.Fatal("empty Min/Max not infinite")
	}
}

func TestScaleAddAxpy(t *testing.T) {
	x := Vec{1, 2, 3}
	x.Scale(2)
	if x[2] != 6 {
		t.Fatalf("Scale: %v", x)
	}
	x.AddConst(1)
	if x[0] != 3 {
		t.Fatalf("AddConst: %v", x)
	}
	x.Add(Vec{1, 1, 1})
	if x[1] != 6 {
		t.Fatalf("Add: %v", x)
	}
	x.Axpy(-1, Vec{3, 6, 7})
	if x[0] != 1 || x[1] != 0 || x[2] != 1 {
		t.Fatalf("Axpy: %v", x)
	}
}

func TestDiffAndRelErr(t *testing.T) {
	x := Vec{1, 2, 3}
	y := Vec{1, 1, 5}
	if got := Diff1(x, y); got != 3 {
		t.Errorf("Diff1 = %v", got)
	}
	if got := DiffInf(x, y); got != 2 {
		t.Errorf("DiffInf = %v", got)
	}
	if got := RelErr1(x, y); math.Abs(got-3.0/7.0) > 1e-15 {
		t.Errorf("RelErr1 = %v", got)
	}
	if got := RelErr1(x, Vec{0, 0, 0}); got != 6 {
		t.Errorf("RelErr1 against zero = %v", got)
	}
}

func TestDominates(t *testing.T) {
	x := Vec{1, 2, 3}
	if !Dominates(x, Vec{1, 2, 3}, 0) {
		t.Error("x should dominate itself")
	}
	if !Dominates(x, Vec{0, 2, 2.5}, 0) {
		t.Error("x should dominate smaller vector")
	}
	if Dominates(x, Vec{2, 2, 3}, 0) {
		t.Error("x should not dominate larger vector")
	}
	if !Dominates(x, Vec{1 + 1e-12, 2, 3}, 1e-9) {
		t.Error("tolerance should absorb noise")
	}
}

func TestMinMax(t *testing.T) {
	x := Vec{3, -1, 2}
	if x.Min() != -1 || x.Max() != 3 {
		t.Fatalf("Min/Max = %v/%v", x.Min(), x.Max())
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	x, y := Vec{1}, Vec{1, 2}
	for name, f := range map[string]func(){
		"Add":       func() { x.Add(y) },
		"Axpy":      func() { x.Axpy(1, y) },
		"Diff1":     func() { Diff1(x, y) },
		"DiffInf":   func() { DiffInf(x, y) },
		"Dominates": func() { Dominates(x, y, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on mismatch", name)
				}
			}()
			f()
		}()
	}
}

// Property: triangle inequality for Diff1.
func TestDiff1TriangleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(50)
		x, y, z := NewVec(n), NewVec(n), NewVec(n)
		for i := 0; i < n; i++ {
			x[i] = r.Float64()*20 - 10
			y[i] = r.Float64()*20 - 10
			z[i] = r.Float64()*20 - 10
		}
		return Diff1(x, z) <= Diff1(x, y)+Diff1(y, z)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ‖x‖∞ ≤ ‖x‖₁ ≤ n·‖x‖∞.
func TestNormOrderingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(50)
		x := NewVec(n)
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		n1, ni := x.Norm1(), x.NormInf()
		return ni <= n1+1e-12 && n1 <= float64(n)*ni+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
