package vecmath

import (
	"math"
	"testing"
	"testing/quick"

	"p2prank/internal/xrand"
)

func mustCSR(t *testing.T, rows, cols int, entries []Entry) *CSR {
	t.Helper()
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	return m
}

func TestCSRBasicMulVec(t *testing.T) {
	// [ 1 2 ]
	// [ 0 3 ]
	m := mustCSR(t, 2, 2, []Entry{
		{0, 0, 1}, {0, 1, 2}, {1, 1, 3},
	})
	dst := NewVec(2)
	m.MulVec(dst, Vec{10, 100})
	if dst[0] != 210 || dst[1] != 300 {
		t.Fatalf("MulVec = %v", dst)
	}
}

func TestCSRDuplicatesSummed(t *testing.T) {
	m := mustCSR(t, 1, 1, []Entry{{0, 0, 1}, {0, 0, 2.5}})
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", m.NNZ())
	}
	if m.Vals[0] != 3.5 {
		t.Fatalf("dup sum = %v", m.Vals[0])
	}
}

func TestCSRUnsortedEntries(t *testing.T) {
	m := mustCSR(t, 3, 3, []Entry{
		{2, 1, 5}, {0, 2, 1}, {1, 0, 2}, {0, 0, 3},
	})
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 || vals[0] != 3 || vals[1] != 1 {
		t.Fatalf("Row(0) = %v %v", cols, vals)
	}
	cols, _ = m.Row(2)
	if len(cols) != 1 || cols[0] != 1 {
		t.Fatalf("Row(2) cols = %v", cols)
	}
}

func TestCSROutOfBounds(t *testing.T) {
	for _, e := range []Entry{{-1, 0, 1}, {0, -1, 1}, {2, 0, 1}, {0, 2, 1}} {
		if _, err := NewCSR(2, 2, []Entry{e}); err == nil {
			t.Errorf("entry %+v accepted", e)
		}
	}
	if _, err := NewCSR(-1, 2, nil); err == nil {
		t.Error("negative rows accepted")
	}
}

func TestCSREmpty(t *testing.T) {
	m := mustCSR(t, 3, 3, nil)
	dst := Const(3, 9)
	m.MulVec(dst, Vec{1, 1, 1})
	if dst.Norm1() != 0 {
		t.Fatalf("empty matrix product = %v", dst)
	}
	if m.NormInf() != 0 {
		t.Fatalf("empty NormInf = %v", m.NormInf())
	}
}

func TestCSRMulVecAdd(t *testing.T) {
	m := mustCSR(t, 2, 2, []Entry{{0, 0, 1}, {1, 1, 1}})
	dst := Vec{5, 5}
	m.MulVecAdd(dst, Vec{1, 2})
	if dst[0] != 6 || dst[1] != 7 {
		t.Fatalf("MulVecAdd = %v", dst)
	}
}

func TestCSRNormInf(t *testing.T) {
	m := mustCSR(t, 2, 3, []Entry{
		{0, 0, 1}, {0, 1, -2}, {1, 2, 2.5},
	})
	if got := m.NormInf(); got != 3 {
		t.Fatalf("NormInf = %v, want 3", got)
	}
}

func TestCSRTranspose(t *testing.T) {
	m := mustCSR(t, 2, 3, []Entry{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3},
	})
	tr := m.Transpose()
	if tr.NumRows != 3 || tr.NumCols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.NumRows, tr.NumCols)
	}
	// (Mᵀ)ᵀ == M as dense matrices.
	x := Vec{1, 2}
	y1 := NewVec(3)
	// y1 = Mᵀ x
	tr.MulVec(y1, x)
	// Check against manual: Mᵀ = [[1,0],[0,3],[2,0]].
	want := Vec{1, 6, 2}
	if Diff1(y1, want) > 1e-12 {
		t.Fatalf("Mᵀx = %v, want %v", y1, want)
	}
}

// Property: transpose twice is identity on the matrix-vector product.
func TestCSRTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		rows, cols := 1+r.Intn(20), 1+r.Intn(20)
		nnz := r.Intn(60)
		entries := make([]Entry, nnz)
		for i := range entries {
			entries[i] = Entry{r.Intn(rows), r.Intn(cols), r.Float64()*4 - 2}
		}
		m, err := NewCSR(rows, cols, entries)
		if err != nil {
			return false
		}
		tt := m.Transpose().Transpose()
		x := NewVec(cols)
		for i := range x {
			x[i] = r.Float64()
		}
		y1, y2 := NewVec(rows), NewVec(rows)
		m.MulVec(y1, x)
		tt.MulVec(y2, x)
		return Diff1(y1, y2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ‖Mx‖∞ ≤ ‖M‖∞ ‖x‖∞ (the bound behind Theorem 3.2's use).
func TestCSRNormInfBoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(20)
		nnz := r.Intn(80)
		entries := make([]Entry, nnz)
		for i := range entries {
			entries[i] = Entry{r.Intn(n), r.Intn(n), r.Float64()*2 - 1}
		}
		m, err := NewCSR(n, n, entries)
		if err != nil {
			return false
		}
		x := NewVec(n)
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		y := NewVec(n)
		m.MulVec(y, x)
		return y.NormInf() <= m.NormInf()*x.NormInf()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: MulVec is linear: M(ax+by) == a·Mx + b·My.
func TestCSRLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(15)
		entries := make([]Entry, r.Intn(50))
		for i := range entries {
			entries[i] = Entry{r.Intn(n), r.Intn(n), r.Float64()}
		}
		m, err := NewCSR(n, n, entries)
		if err != nil {
			return false
		}
		a, b := r.Float64()*3, r.Float64()*3
		x, y := NewVec(n), NewVec(n)
		for i := 0; i < n; i++ {
			x[i], y[i] = r.Float64(), r.Float64()
		}
		combo := NewVec(n)
		for i := range combo {
			combo[i] = a*x[i] + b*y[i]
		}
		left, mx, my := NewVec(n), NewVec(n), NewVec(n)
		m.MulVec(left, combo)
		m.MulVec(mx, x)
		m.MulVec(my, y)
		for i := range left {
			if math.Abs(left[i]-(a*mx[i]+b*my[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCSRMulVec(b *testing.B) {
	r := xrand.New(1)
	const n = 10000
	const deg = 15
	entries := make([]Entry, 0, n*deg)
	for i := 0; i < n; i++ {
		for k := 0; k < deg; k++ {
			entries = append(entries, Entry{i, r.Intn(n), r.Float64()})
		}
	}
	m, err := NewCSR(n, n, entries)
	if err != nil {
		b.Fatal(err)
	}
	x, y := NewVec(n), NewVec(n)
	for i := range x {
		x[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(y, x)
	}
}
