package vecmath

import (
	"math"
	"sort"
	"testing"

	"p2prank/internal/xrand"
)

// randCSR builds a reproducible sparse matrix with avgNNZ entries per
// row, including deliberate duplicates to exercise the merge sweep.
func randCSR(t *testing.T, rows, cols, avgNNZ int, seed uint64) *CSR {
	t.Helper()
	rng := xrand.New(seed)
	entries := make([]Entry, 0, rows*avgNNZ)
	for i := 0; i < rows*avgNNZ; i++ {
		entries = append(entries, Entry{
			Row: int(rng.Uint64() % uint64(rows)),
			Col: int(rng.Uint64() % uint64(cols)),
			Val: rng.Float64(),
		})
	}
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	return m
}

func randVec(n int, seed uint64) Vec {
	rng := xrand.New(seed)
	x := NewVec(n)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

func bitsEqual(x, y Vec) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
			return false
		}
	}
	return true
}

// TestNewCSRCountingSortMatchesComparatorSort pins the counting-sort
// assembly to the reference semantics: entries ordered by (row, col),
// duplicates summed.
func TestNewCSRCountingSortMatchesComparatorSort(t *testing.T) {
	rng := xrand.New(7)
	const rows, cols, nnz = 57, 43, 900
	entries := make([]Entry, nnz)
	for i := range entries {
		entries[i] = Entry{
			Row: int(rng.Uint64() % rows),
			Col: int(rng.Uint64() % cols),
			Val: rng.Float64(),
		}
	}
	m, err := NewCSR(rows, cols, append([]Entry(nil), entries...))
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	// Reference: comparator sort (stable, same duplicate order) + merge.
	ref := append([]Entry(nil), entries...)
	sort.SliceStable(ref, func(i, j int) bool {
		if ref[i].Row != ref[j].Row {
			return ref[i].Row < ref[j].Row
		}
		return ref[i].Col < ref[j].Col
	})
	var merged []Entry
	for _, e := range ref {
		if n := len(merged); n > 0 && merged[n-1].Row == e.Row && merged[n-1].Col == e.Col {
			merged[n-1].Val += e.Val
			continue
		}
		merged = append(merged, e)
	}
	if len(m.Vals) != len(merged) {
		t.Fatalf("CSR has %d entries, reference %d", len(m.Vals), len(merged))
	}
	k := 0
	for i := 0; i < rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			e := merged[k]
			if e.Row != i || e.Col != int(m.Cols[p]) ||
				math.Float64bits(e.Val) != math.Float64bits(m.Vals[p]) {
				t.Fatalf("entry %d: CSR (%d,%d,%v) != reference (%d,%d,%v)",
					k, i, m.Cols[p], m.Vals[p], e.Row, e.Col, e.Val)
			}
			k++
		}
	}
}

// TestKernelsBitIdenticalAcrossShardCounts is the tentpole contract at
// the kernel layer: every CSR product and every norm produces the same
// bits no matter how the rows are sharded (and therefore no matter how
// many workers execute the shards).
func TestKernelsBitIdenticalAcrossShardCounts(t *testing.T) {
	const n = 9000 // above csrParMinNNZ and vecBlock so parallel paths engage
	x := randVec(n, 11)
	e := randVec(n, 12)
	xa := randVec(n, 13)
	type snap struct {
		mul, add, step Vec
		stepDelta      float64
		normInf        float64
		norm1, diff1   float64
	}
	run := func(shards int) snap {
		prev := SetDefaultCSRShards(shards)
		defer SetDefaultCSRShards(prev)
		m := randCSR(t, n, n, 4, 3) // rebuilt so shardPtr reflects the knob
		var s snap
		s.mul = NewVec(n)
		m.MulVec(s.mul, x)
		s.add = e.Clone()
		m.MulVecAdd(s.add, x)
		s.step = NewVec(n)
		m.StepInto(s.step, x, e, xa)
		sd := NewVec(n)
		s.stepDelta = m.StepDelta(sd, x, e, xa)
		if !bitsEqual(sd, s.step) {
			t.Fatalf("shards=%d: StepDelta vector differs from StepInto", shards)
		}
		s.normInf = m.NormInf()
		s.norm1 = x.Norm1()
		s.diff1 = Diff1(s.step, x)
		return s
	}
	base := run(1)
	for _, shards := range []int{2, 4, 16, 64} {
		got := run(shards)
		if !bitsEqual(got.mul, base.mul) || !bitsEqual(got.add, base.add) || !bitsEqual(got.step, base.step) {
			t.Fatalf("shards=%d: kernel output bits differ from serial", shards)
		}
		for name, pair := range map[string][2]float64{
			"StepDelta": {got.stepDelta, base.stepDelta},
			"NormInf":   {got.normInf, base.normInf},
			"Norm1":     {got.norm1, base.norm1},
			"Diff1":     {got.diff1, base.diff1},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("shards=%d: %s = %v differs from serial %v", shards, name, pair[0], pair[1])
			}
		}
	}
}

// TestKernelsMatchNaiveReference checks the sharded kernels against
// direct per-row loops, bit for bit: the shard decomposition never
// splits a row, so each dst element is one uninterrupted serial dot.
func TestKernelsMatchNaiveReference(t *testing.T) {
	const n = 9000
	m := randCSR(t, n, n, 4, 5)
	x := randVec(n, 21)
	e := randVec(n, 22)
	xa := randVec(n, 23)

	naive := NewVec(n)
	for i := 0; i < n; i++ {
		s := 0.0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Vals[p] * x[m.Cols[p]]
		}
		naive[i] = s
	}
	got := NewVec(n)
	m.MulVec(got, x)
	if !bitsEqual(got, naive) {
		t.Fatal("MulVec differs from naive row loop")
	}

	// StepInto must associate exactly like the unfused sequence.
	unfused := NewVec(n)
	m.MulVec(unfused, x)
	unfused.Add(e)
	unfused.Add(xa)
	fused := NewVec(n)
	m.StepInto(fused, x, e, xa)
	if !bitsEqual(fused, unfused) {
		t.Fatal("StepInto differs from MulVec+Add+Add")
	}

	// Blocked reductions must equal an explicitly block-ordered serial sum.
	want := 0.0
	for lo := 0; lo < n; lo += vecBlock {
		hi := lo + vecBlock
		if hi > n {
			hi = n
		}
		s := 0.0
		for _, v := range x[lo:hi] {
			s += math.Abs(v)
		}
		want += s
	}
	if got := x.Norm1(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("Norm1 = %v, block-ordered serial = %v", got, want)
	}
}

// TestStepDeltaSmallMatchesUnfused pins the n ≤ vecBlock fused path to
// the StepInto+Diff1 composition it replaces.
func TestStepDeltaSmallMatchesUnfused(t *testing.T) {
	const n = 300
	m := randCSR(t, n, n, 5, 31)
	x := randVec(n, 32)
	e := randVec(n, 33)

	want := NewVec(n)
	m.StepInto(want, x, e, nil)
	wantDelta := Diff1(want, x)

	got := NewVec(n)
	gotDelta := m.StepDelta(got, x, e, nil)
	if !bitsEqual(got, want) {
		t.Fatal("fused StepDelta vector differs from StepInto")
	}
	if math.Float64bits(gotDelta) != math.Float64bits(wantDelta) {
		t.Fatalf("fused StepDelta = %v, unfused = %v", gotDelta, wantDelta)
	}
}

func BenchmarkMulVec(b *testing.B) {
	const n = 20000
	rng := xrand.New(9)
	entries := make([]Entry, n*8)
	for i := range entries {
		entries[i] = Entry{
			Row: int(rng.Uint64() % n),
			Col: int(rng.Uint64() % n),
			Val: rng.Float64(),
		}
	}
	m, err := NewCSR(n, n, entries)
	if err != nil {
		b.Fatal(err)
	}
	x := randVec(n, 10)
	dst := NewVec(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkStepDelta(b *testing.B) {
	const n = 20000
	rng := xrand.New(9)
	entries := make([]Entry, n*8)
	for i := range entries {
		entries[i] = Entry{
			Row: int(rng.Uint64() % n),
			Col: int(rng.Uint64() % n),
			Val: rng.Float64(),
		}
	}
	m, err := NewCSR(n, n, entries)
	if err != nil {
		b.Fatal(err)
	}
	x := randVec(n, 10)
	e := randVec(n, 11)
	dst := NewVec(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StepDelta(dst, x, e, nil)
	}
}

func BenchmarkNewCSR(b *testing.B) {
	const n = 20000
	rng := xrand.New(9)
	entries := make([]Entry, n*8)
	for i := range entries {
		entries[i] = Entry{
			Row: int(rng.Uint64() % n),
			Col: int(rng.Uint64() % n),
			Val: rng.Float64(),
		}
	}
	scratch := make([]Entry, len(entries))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, entries)
		if _, err := NewCSR(n, n, scratch); err != nil {
			b.Fatal(err)
		}
	}
}
