// Package vecmath provides the dense-vector and sparse-matrix primitives
// used by the PageRank solvers: L1/L∞ norms, element-wise operations, and
// compressed sparse row (CSR) matrices with matrix-free products.
//
// The package is deliberately small and allocation-conscious: the solvers
// in internal/pagerank and internal/ranker iterate over million-edge
// graphs, so every operation that can write into a caller-provided
// destination does, and the hot small-vector paths allocate nothing.
//
// Large operations run on the internal/par worker pool. Determinism is
// structural, not accidental: sum reductions always accumulate in fixed
// blocks of vecBlock elements and combine the partials in block order,
// so the floating-point association — and therefore every result bit —
// is a function of the input alone, never of GOMAXPROCS or whether the
// parallel path was taken. Element-wise ops and max reductions are
// exact under any split.
package vecmath

import (
	"fmt"
	"math"

	"p2prank/internal/par"
)

const (
	// vecBlock is the fixed reduction granularity. Changing it changes
	// low result bits, so it is a constant, not a knob. A vector that
	// fits one block reduces with a plain serial sweep, which is the
	// same association a one-block reduction produces.
	vecBlock = 2048
	// parMinVec is the vector length below which operations stay on the
	// calling goroutine; pool dispatch costs more than the loop there.
	parMinVec = 4 * vecBlock
	// maxStackBlocks bounds the stack partials buffer in blockCombine:
	// vectors up to maxStackBlocks·vecBlock elements reduce without
	// heap allocation.
	maxStackBlocks = 128
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Const returns a vector of length n with every element set to v.
func Const(n int, v float64) Vec {
	x := make(Vec, n)
	for i := range x {
		x[i] = v
	}
	return x
}

// Clone returns a copy of x.
func (x Vec) Clone() Vec {
	y := make(Vec, len(x))
	copy(y, x)
	return y
}

// blockCombine reduces [0, n) with partial evaluated per fixed
// vecBlock-sized block, partials combined in block order. Callers must
// have handled n ≤ vecBlock themselves (the closure-free fast path).
func blockCombine(n int, partial func(lo, hi int) float64) float64 {
	nb := par.Blocks(n, vecBlock)
	var buf [maxStackBlocks]float64
	partials := buf[:]
	if nb > maxStackBlocks {
		//p2plint:allow hotalloc -- spill path for >maxStackBlocks partials; stack buffer covers steady state
		partials = make([]float64, nb)
	}
	//p2plint:allow hotalloc -- block-fill adapter closure, one per reduction
	fill := func(b int) {
		lo := b * vecBlock
		hi := lo + vecBlock
		if hi > n {
			hi = n
		}
		partials[b] = partial(lo, hi)
	}
	if n < parMinVec {
		for b := 0; b < nb; b++ {
			fill(b)
		}
	} else {
		par.Default().Run(nb, fill)
	}
	s := 0.0
	for b := 0; b < nb; b++ {
		s += partials[b]
	}
	return s
}

// parSpans applies f over [0, n) in vecBlock-sized spans on the pool.
// Callers must have handled the small-n serial path themselves. f
// writes only inside its span, so results match the serial sweep
// bit for bit.
func parSpans(n int, f func(lo, hi int)) {
	par.Default().Run(par.Blocks(n, vecBlock), func(b int) {
		lo := b * vecBlock
		hi := lo + vecBlock
		if hi > n {
			hi = n
		}
		f(lo, hi)
	})
}

// Fill sets every element of x to v.
func (x Vec) Fill(v float64) {
	for i := range x {
		x[i] = v
	}
}

// Zero sets every element of x to 0.
func (x Vec) Zero() { x.Fill(0) }

func sumRange(x Vec, lo, hi int) float64 {
	s := 0.0
	for _, v := range x[lo:hi] {
		s += v
	}
	return s
}

// Sum returns the sum of the elements of x, accumulated in fixed
// blocks (see the package comment on determinism).
func (x Vec) Sum() float64 {
	if len(x) <= vecBlock {
		return sumRange(x, 0, len(x))
	}
	return blockCombine(len(x), func(lo, hi int) float64 { return sumRange(x, lo, hi) })
}

// Mean returns the arithmetic mean of x, or 0 for an empty vector.
func (x Vec) Mean() float64 {
	if len(x) == 0 {
		return 0
	}
	return x.Sum() / float64(len(x))
}

func norm1Range(x Vec, lo, hi int) float64 {
	s := 0.0
	for _, v := range x[lo:hi] {
		s += math.Abs(v)
	}
	return s
}

// Norm1 returns the L1 norm ‖x‖₁.
func (x Vec) Norm1() float64 {
	if len(x) <= vecBlock {
		return norm1Range(x, 0, len(x))
	}
	return blockCombine(len(x), func(lo, hi int) float64 { return norm1Range(x, lo, hi) })
}

// NormInf returns the L∞ norm ‖x‖∞.
func (x Vec) NormInf() float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies every element of x by c in place.
func (x Vec) Scale(c float64) {
	if len(x) < parMinVec {
		for i := range x {
			x[i] *= c
		}
		return
	}
	parSpans(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= c
		}
	})
}

// AddConst adds c to every element of x in place.
func (x Vec) AddConst(c float64) {
	if len(x) < parMinVec {
		for i := range x {
			x[i] += c
		}
		return
	}
	parSpans(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += c
		}
	})
}

// Add adds y to x element-wise in place. It panics on length mismatch.
func (x Vec) Add(y Vec) {
	mustSameLen(len(x), len(y))
	if len(x) < parMinVec {
		for i := range x {
			x[i] += y[i]
		}
		return
	}
	parSpans(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += y[i]
		}
	})
}

// Axpy computes x += a·y in place. It panics on length mismatch.
func (x Vec) Axpy(a float64, y Vec) {
	mustSameLen(len(x), len(y))
	if len(x) < parMinVec {
		for i := range x {
			x[i] += a * y[i]
		}
		return
	}
	parSpans(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] += a * y[i]
		}
	})
}

func diff1Range(x, y Vec, lo, hi int) float64 {
	s := 0.0
	for i := lo; i < hi; i++ {
		s += math.Abs(x[i] - y[i])
	}
	return s
}

// Diff1 returns ‖x−y‖₁. It panics on length mismatch.
func Diff1(x, y Vec) float64 {
	mustSameLen(len(x), len(y))
	if len(x) <= vecBlock {
		return diff1Range(x, y, 0, len(x))
	}
	//p2plint:allow hotalloc -- range adapter closure, one per >vecBlock reduction
	return blockCombine(len(x), func(lo, hi int) float64 { return diff1Range(x, y, lo, hi) })
}

// DiffInf returns ‖x−y‖∞. It panics on length mismatch.
func DiffInf(x, y Vec) float64 {
	mustSameLen(len(x), len(y))
	m := 0.0
	for i := range x {
		if a := math.Abs(x[i] - y[i]); a > m {
			m = a
		}
	}
	return m
}

// RelErr1 returns ‖x−y‖₁ / ‖y‖₁, the relative-error metric the paper uses
// to compare distributed ranks against the centralized fixed point. If
// ‖y‖₁ is zero it returns ‖x‖₁ (absolute error against the zero vector).
func RelErr1(x, y Vec) float64 {
	d := Diff1(x, y)
	n := y.Norm1()
	//p2plint:allow floateq -- exact-zero guard: Norm1 is 0 only for the all-zero vector, and any other divisor is fine
	if n == 0 {
		return x.Norm1()
	}
	return d / n
}

// Dominates reports whether x ≥ y element-wise, with slack tol ≥ 0 to
// absorb floating-point noise (x[i] ≥ y[i] − tol for all i). The paper's
// Theorem 4.1 states DPR1 rank sequences are monotone in this order.
func Dominates(x, y Vec, tol float64) bool {
	mustSameLen(len(x), len(y))
	for i := range x {
		if x[i] < y[i]-tol {
			return false
		}
	}
	return true
}

// Min returns the smallest element of x, or +Inf for an empty vector.
func (x Vec) Min() float64 {
	m := math.Inf(1)
	for _, v := range x {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element of x, or -Inf for an empty vector.
func (x Vec) Max() float64 {
	m := math.Inf(-1)
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("vecmath: length mismatch %d != %d", a, b))
	}
}
