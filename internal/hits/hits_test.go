package hits

import (
	"errors"
	"math"
	"testing"

	"p2prank/internal/webgraph"
)

func buildGraph(t *testing.T, pages int, links [][2]int32) *webgraph.Graph {
	t.Helper()
	var b webgraph.Builder
	s := b.AddSite("a.edu")
	for i := 0; i < pages; i++ {
		b.AddPage(s)
	}
	for _, l := range links {
		if err := b.AddLink(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestStarAuthority(t *testing.T) {
	// Pages 1..4 all point to page 0: page 0 is the sole authority,
	// pages 1..4 are equal hubs, page 0 is no hub.
	g := buildGraph(t, 5, [][2]int32{{1, 0}, {2, 0}, {3, 0}, {4, 0}})
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Authorities[0]-1) > 1e-9 {
		t.Fatalf("authority(0) = %v, want 1", res.Authorities[0])
	}
	for i := 1; i < 5; i++ {
		if res.Authorities[i] > 1e-9 {
			t.Fatalf("authority(%d) = %v, want 0", i, res.Authorities[i])
		}
		if math.Abs(res.Hubs[i]-0.5) > 1e-9 {
			t.Fatalf("hub(%d) = %v, want 0.5", i, res.Hubs[i])
		}
	}
	if res.Hubs[0] > 1e-9 {
		t.Fatalf("hub(0) = %v, want 0", res.Hubs[0])
	}
}

func TestBipartiteCore(t *testing.T) {
	// Hubs {0,1} each point to authorities {2,3,4}; the classic
	// complete bipartite core. Hubs equal, authorities equal.
	var links [][2]int32
	for _, h := range []int32{0, 1} {
		for _, a := range []int32{2, 3, 4} {
			links = append(links, [2]int32{h, a})
		}
	}
	g := buildGraph(t, 5, links)
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Hubs[0]-res.Hubs[1]) > 1e-12 {
		t.Fatal("equal hubs scored differently")
	}
	if math.Abs(res.Authorities[2]-res.Authorities[4]) > 1e-12 {
		t.Fatal("equal authorities scored differently")
	}
	// 2 hubs at 1/√2, 3 authorities at 1/√3.
	if math.Abs(res.Hubs[0]-1/math.Sqrt(2)) > 1e-9 {
		t.Fatalf("hub = %v, want 1/√2", res.Hubs[0])
	}
	if math.Abs(res.Authorities[2]-1/math.Sqrt(3)) > 1e-9 {
		t.Fatalf("authority = %v, want 1/√3", res.Authorities[2])
	}
}

func TestUnitNorms(t *testing.T) {
	cfg := webgraph.DefaultGenConfig(3000)
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l2 := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v * v
		}
		return math.Sqrt(s)
	}
	if math.Abs(l2(res.Hubs)-1) > 1e-9 || math.Abs(l2(res.Authorities)-1) > 1e-9 {
		t.Fatalf("norms: hubs %v, authorities %v", l2(res.Hubs), l2(res.Authorities))
	}
	if res.Hubs.Min() < 0 || res.Authorities.Min() < 0 {
		t.Fatal("negative scores")
	}
}

func TestEmptyAndLinklessGraphs(t *testing.T) {
	var b webgraph.Builder
	empty := b.Build()
	res, err := Compute(empty, DefaultOptions())
	if err != nil || !res.Converged {
		t.Fatalf("empty graph: %v", err)
	}
	linkless := buildGraph(t, 3, nil)
	res, err = Compute(linkless, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// No links: all scores collapse to zero after one round.
	if res.Authorities.Norm1() > 1e-12 || res.Hubs.Norm1() > 1e-12 {
		t.Fatalf("linkless scores: %v / %v", res.Hubs, res.Authorities)
	}
}

func TestOptionValidation(t *testing.T) {
	g := buildGraph(t, 2, [][2]int32{{0, 1}})
	if _, err := Compute(g, Options{Epsilon: 0}); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := Compute(g, Options{Epsilon: 1e-9, MaxIter: -1}); err == nil {
		t.Error("negative MaxIter accepted")
	}
}

func TestNotConverged(t *testing.T) {
	cfg := webgraph.DefaultGenConfig(2000)
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compute(g, Options{Epsilon: 1e-300, MaxIter: 2})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

func TestMutualReinforcement(t *testing.T) {
	// Page 5 points at the popular authority 0 AND at an unpopular
	// page; page 6 points only at the unpopular page. Page 5 must be
	// the better hub.
	g := buildGraph(t, 7, [][2]int32{
		{1, 0}, {2, 0}, {3, 0},
		{5, 0}, {5, 4},
		{6, 4},
	})
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hubs[5] <= res.Hubs[6] {
		t.Fatalf("hub(5)=%v not above hub(6)=%v", res.Hubs[5], res.Hubs[6])
	}
}

func BenchmarkHITS5k(b *testing.B) {
	cfg := webgraph.DefaultGenConfig(5000)
	g, err := webgraph.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(g, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
