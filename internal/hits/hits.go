// Package hits implements Kleinberg's HITS algorithm (Authoritative
// Sources in a Hyperlinked Environment, SODA 1998) — the other seminal
// link-analysis algorithm the paper's introduction weighs against
// PageRank. It serves as a comparison baseline: like PageRank it is an
// iterative eigenvector computation over the link graph, with the same
// synchronization obstacle to naive distribution that motivates the
// paper's open-system reformulation.
package hits

import (
	"errors"
	"fmt"
	"math"

	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

// Options configures the iteration.
type Options struct {
	// Epsilon terminates when both score vectors move less than this
	// in L1 between iterations. Must be positive.
	Epsilon float64
	// MaxIter bounds the iteration count (0 = 1000).
	MaxIter int
}

// DefaultOptions returns ε = 1e-10, 1000 iterations.
func DefaultOptions() Options { return Options{Epsilon: 1e-10, MaxIter: 1000} }

// Result holds the converged scores.
type Result struct {
	// Hubs scores pages by how well they point at authorities.
	Hubs vecmath.Vec
	// Authorities scores pages by how well hubs point at them.
	Authorities vecmath.Vec
	// Iterations is the number of update rounds performed.
	Iterations int
	// Converged reports whether ε was reached before MaxIter.
	Converged bool
}

// ErrNotConverged is wrapped into the error returned when MaxIter is
// exhausted.
var ErrNotConverged = errors.New("hits: did not converge")

// Compute runs HITS over the internal links of g. External links have
// no identified endpoint and are ignored — HITS is defined on the
// induced subgraph the crawler actually saw. Scores are L2-normalized
// each round, as in the original formulation.
func Compute(g webgraph.Store, opt Options) (Result, error) {
	if opt.Epsilon <= 0 {
		return Result{}, fmt.Errorf("hits: Epsilon = %v, must be positive", opt.Epsilon)
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 1000
	}
	if opt.MaxIter < 0 {
		return Result{}, fmt.Errorf("hits: negative MaxIter %d", opt.MaxIter)
	}
	n := g.NumPages()
	res := Result{
		Hubs:        vecmath.Const(n, 1),
		Authorities: vecmath.Const(n, 1),
	}
	if n == 0 {
		res.Converged = true
		return res, nil
	}
	normalize(res.Hubs)
	normalize(res.Authorities)
	newH := vecmath.NewVec(n)
	newA := vecmath.NewVec(n)
	for it := 0; it < opt.MaxIter; it++ {
		// a(v) = Σ_{u→v} h(u)
		newA.Zero()
		for p := 0; p < n; p++ {
			u := int32(p)
			h := res.Hubs[p]
			for _, v := range g.InternalOut(u) {
				newA[v] += h
			}
		}
		normalize(newA)
		// h(u) = Σ_{u→v} a(v)
		for p := 0; p < n; p++ {
			u := int32(p)
			s := 0.0
			for _, v := range g.InternalOut(u) {
				s += newA[v]
			}
			newH[p] = s
		}
		normalize(newH)
		delta := vecmath.Diff1(newA, res.Authorities) + vecmath.Diff1(newH, res.Hubs)
		res.Authorities, newA = newA, res.Authorities
		res.Hubs, newH = newH, res.Hubs
		res.Iterations = it + 1
		if delta <= opt.Epsilon {
			res.Converged = true
			break
		}
	}
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}

// normalize scales x to unit L2 norm; an all-zero vector is left as is
// (a graph with no links has no meaningful scores).
func normalize(x vecmath.Vec) {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	if s == 0 {
		return
	}
	x.Scale(1 / math.Sqrt(s))
}
