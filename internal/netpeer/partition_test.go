package netpeer

import (
	"testing"
	"time"

	"p2prank/internal/dprcore"
	"p2prank/internal/webgraph"
)

// TestClusterReliableBreakerAcrossPartitionHeal is the live half of the
// breaker/partition acceptance: a four-peer cluster runs with reliable
// delivery while a seeded partition (cluster seed 1 cuts peer 1 onto
// the minority side) blackholes cross-cut frames for the first 1.2s of
// wall time. Chunks crossing the cut blow through MaxAttempts, so the
// senders' circuits toward the far side must open (BreakerTrips,
// Broken observed true); after the heal the post-cooldown probes land,
// acks close every circuit, and the cluster converges to the
// fault-free tolerance.
func TestClusterReliableBreakerAcrossPartitionHeal(t *testing.T) {
	gc := webgraph.DefaultGenConfig(1200)
	gc.Sites = 20 // spread cross-group traffic over every peer pair
	gc.Seed = 17
	g, err := webgraph.Generate(gc)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	partitionTo := float64(1200 * time.Millisecond)
	cl, err := StartCluster(g, ClusterConfig{
		Params: dprcore.Params{
			Alg: dprcore.DPR1,
			Fault: dprcore.FaultConfig{
				PartitionFrac: 0.3, PartitionFrom: 0, PartitionTo: partitionTo,
			},
			// Trip fast relative to the window: a blackholed chunk is
			// given up after ~24ms, and the 200ms cooldown re-probes
			// (and re-trips) several times before the heal.
			Reliable: dprcore.ReliableConfig{
				Timeout:     float64(8 * time.Millisecond),
				MaxAttempts: 2,
				Cooldown:    float64(200 * time.Millisecond),
			},
		},
		K: k, MeanWait: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The cluster seed (default 1) keys the lattice: peer 1 is the
	// minority. Sanity-check the cut before waiting on it.
	cut := dprcore.FaultConfig{PartitionFrac: 0.3, PartitionFrom: 0, PartitionTo: partitionTo, Seed: 1}
	if !cut.PartitionMinority(1) {
		t.Fatal("expected peer 1 on the minority side of the seed-1 cut")
	}

	// Open: watch for a circuit across the cut (either direction) while
	// the partition is up. Broken() self-clears once the cooldown
	// lapses, so also require the monotonic trip counter.
	sawBroken := false
	deadline := time.Now().Add(10 * time.Second)
	for {
		var trips int64
		for i := 0; i < k; i++ {
			trips += cl.Peer(i).ReliableStats().BreakerTrips
			for j := 0; j < k; j++ {
				if i != j && cut.PartitionMinority(i) != cut.PartitionMinority(j) && cl.Peer(i).Broken(j) {
					sawBroken = true
				}
			}
		}
		if trips > 0 && sawBroken {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no circuit opened across the cut in 10s (trips=%d sawBroken=%v)", trips, sawBroken)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Closed: after the heal the probes get acked and the cluster
	// reaches the fault-free fixed point.
	if err := cl.WaitConverged(1e-6, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	var acks, partitioned int64
	for i := 0; i < k; i++ {
		acks += cl.Peer(i).ReliableStats().Acks
		partitioned += cl.Peer(i).FaultStats().Partitioned
		for j := 0; j < k; j++ {
			if i != j && cl.Peer(i).Broken(j) {
				t.Fatalf("peer %d's circuit to %d still open after convergence", i, j)
			}
		}
	}
	if acks == 0 {
		t.Fatal("no acks after the heal — circuits never closed by traffic")
	}
	if partitioned == 0 {
		t.Fatal("partition window blackholed nothing")
	}
}
