package netpeer

import (
	"sync"
	"testing"
	"time"

	"p2prank/internal/dprcore"
)

// TestStressPeerStopUnderLoad is the CI race-detector stress test: a
// cluster ranks under indirect transmission (so peers relay each
// other's frames, the concurrency-heavy path), a reader goroutine
// hammers the snapshot APIs, one peer is torn down mid-run, and the
// survivors must keep iterating and still drive the global error down.
// Run it under -race; its value is the interleavings it provokes, not
// the final numbers.
func TestStressPeerStopUnderLoad(t *testing.T) {
	g := genGraph(t, 900, 11)
	cl, err := StartCluster(g, ClusterConfig{
		Params:   dprcore.Params{Alg: dprcore.DPR1},
		K:        5,
		MeanWait: 5 * time.Millisecond,
		Indirect: true,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Reader goroutine: concurrent snapshots race against the rank
	// loops and read loops of every peer.
	stopReads := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			for _, p := range cl.Peers {
				_ = p.Ranks()
				_ = p.Loops()
				_ = p.ChunksSent()
				_ = p.ChunksRelayed()
			}
			_ = cl.RelErr()
		}
	}()

	// Let traffic build up, then kill a middle peer while its relays
	// are in flight.
	time.Sleep(150 * time.Millisecond)
	errBefore := cl.RelErr()
	if err := cl.Peers[2].Close(); err != nil {
		t.Fatalf("closing peer 2: %v", err)
	}

	loopsBefore := make([]int64, len(cl.Peers))
	for i, p := range cl.Peers {
		loopsBefore[i] = p.Loops()
	}
	time.Sleep(400 * time.Millisecond)
	close(stopReads)
	readers.Wait()

	for i, p := range cl.Peers {
		if i == 2 {
			continue
		}
		if p.Loops() <= loopsBefore[i] {
			t.Errorf("peer %d stalled after peer 2 stopped", i)
		}
	}
	// Convergence proper is asserted by the functional tests; here the
	// survivors only need to have kept making progress toward R*
	// without the dead relay.
	if errAfter := cl.RelErr(); errAfter > errBefore {
		t.Errorf("relative error rose after peer stop: %v -> %v", errBefore, errAfter)
	}
}

// TestStressCloseDuringDial tears clusters down immediately after
// start, racing Close against lazy dials, accept loops, and the first
// rank iterations.
func TestStressCloseDuringDial(t *testing.T) {
	g := genGraph(t, 400, 13)
	for i := 0; i < 3; i++ {
		cl, err := StartCluster(g, ClusterConfig{
			Params:   dprcore.Params{Alg: dprcore.DPR2},
			K:        4,
			MeanWait: time.Millisecond,
			Seed:     uint64(17 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(i*10) * time.Millisecond)
		cl.Close()
	}
}
