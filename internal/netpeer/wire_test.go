package netpeer

import (
	"net"
	"testing"

	"p2prank/internal/codec"
	"p2prank/internal/dprcore"
	"p2prank/internal/transport"
)

// pipeConn builds a connected TCP pair on localhost.
func pipeConn(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			done <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server := <-done
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func sampleFrame() frame {
	return frame{Chunks: []transport.ScoreChunk{
		{
			SrcGroup: 1, DstGroup: 2, Round: 7, Links: 3,
			Entries: []transport.ScoreEntry{{DstLocal: 0, Value: 0.5}, {DstLocal: 4, Value: 1.25}},
		},
		{SrcGroup: 3, DstGroup: 2, Round: 9, Links: 1},
	}}
}

func TestWireRoundTrip(t *testing.T) {
	for _, w := range []wireFormat{
		gobWire{},
		codecWire{codec: codec.Plain{}},
		codecWire{codec: codec.Delta{}},
	} {
		client, server := pipeConn(t)
		fw := w.newWriter(client)
		fr := w.newReader(server)
		in := sampleFrame()
		if err := fw.writeFrame(in); err != nil {
			t.Fatal(err)
		}
		out, err := fr.readFrame()
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Chunks) != 2 {
			t.Fatalf("%T: %d chunks", w, len(out.Chunks))
		}
		if out.Chunks[0].SrcGroup != 1 || out.Chunks[0].Entries[1].Value != 1.25 {
			t.Fatalf("%T: chunk mangled: %+v", w, out.Chunks[0])
		}
		if out.Chunks[1].Round != 9 || len(out.Chunks[1].Entries) != 0 {
			t.Fatalf("%T: empty-entry chunk mangled: %+v", w, out.Chunks[1])
		}
	}
}

func TestWireMultipleFrames(t *testing.T) {
	client, server := pipeConn(t)
	w := codecWire{codec: codec.Delta{}}
	fw := w.newWriter(client)
	fr := w.newReader(server)
	for i := 0; i < 5; i++ {
		if err := fw.writeFrame(sampleFrame()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		f, err := fr.readFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(f.Chunks) != 2 {
			t.Fatalf("frame %d has %d chunks", i, len(f.Chunks))
		}
	}
}

func TestCodecWireRejectsHugeFrames(t *testing.T) {
	client, server := pipeConn(t)
	w := codecWire{codec: codec.Plain{}}
	fr := w.newReader(server)
	// A frame advertising 2^40 chunks must be rejected, not allocated.
	if _, err := client.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10}); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.readFrame(); err == nil {
		t.Fatal("implausible chunk count accepted")
	}
	// And an implausible chunk size.
	client2, server2 := pipeConn(t)
	fr2 := w.newReader(server2)
	if _, err := client2.Write([]byte{0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10}); err != nil {
		t.Fatal(err)
	}
	if _, err := fr2.readFrame(); err == nil {
		t.Fatal("implausible chunk size accepted")
	}
}

func TestCodecWireTruncation(t *testing.T) {
	client, server := pipeConn(t)
	w := codecWire{codec: codec.Delta{}}
	fr := w.newReader(server)
	// Valid count, then a cut-off body and a closed connection.
	if _, err := client.Write([]byte{0x01, 0x20, 0x01}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, err := fr.readFrame(); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestPeerConfigValidation(t *testing.T) {
	g := genGraph(t, 300, 61)
	cl, err := StartCluster(g, ClusterConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	grp := cl.Peers[0].cfg.Group
	bad := []Config{
		{Group: grp, Params: dprcore.Params{Alg: dprcore.Algorithm(9)}},
		{Group: grp, Params: dprcore.Params{Alpha: 2}},
		{Group: grp, Params: dprcore.Params{Alpha: -1}},
		{Group: grp, Params: dprcore.Params{InnerEpsilon: -1}},
		{Group: grp, Params: dprcore.Params{SendProb: -0.5}},
		{Group: grp, Params: dprcore.Params{SendProb: 1.5}},
		{Group: grp, MeanWait: -1},
		{Group: grp, Params: dprcore.Params{T1: 5, T2: 1}},
		{Group: grp, Params: dprcore.Params{Fault: dprcore.FaultConfig{DropProb: 2}}},
	}
	for i, cfg := range bad {
		if _, err := Listen("127.0.0.1:0", cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
