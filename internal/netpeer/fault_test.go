package netpeer

import (
	"testing"
	"time"

	"p2prank/internal/dprcore"
)

// TestClusterConvergesUnderFaultDrops runs a live cluster with the
// shared dprcore fault injector dropping 30% of all score chunks below
// the algorithm, and checks the peers still converge — the same loss
// tolerance the simulator's fault test demonstrates, here over real
// sockets.
func TestClusterConvergesUnderFaultDrops(t *testing.T) {
	g := genGraph(t, 1200, 1)
	cl, err := StartCluster(g, ClusterConfig{
		Params: dprcore.Params{Alg: dprcore.DPR1, Fault: dprcore.FaultConfig{DropProb: 0.3}},
		K:      4, MeanWait: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(1e-6, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	var dropped int64
	for _, p := range cl.Peers {
		dropped += p.FaultStats().Dropped
	}
	if dropped == 0 {
		t.Fatal("no chunks dropped across the cluster")
	}
}

// TestClusterConvergesUnderDelayAndDup exercises the wall-clock delay
// path (dprcore's Clock implemented by netpeer's wallClock) and
// duplicate suppression by round tracking.
func TestClusterConvergesUnderDelayAndDup(t *testing.T) {
	g := genGraph(t, 1000, 3)
	cl, err := StartCluster(g, ClusterConfig{
		Params: dprcore.Params{Alg: dprcore.DPR1, Fault: dprcore.FaultConfig{
			DelayProb: 0.25,
			MeanDelay: float64(20 * time.Millisecond),
			DupProb:   0.25,
		}},
		K: 3, MeanWait: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(1e-6, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	var delayed, duplicated int64
	for _, p := range cl.Peers {
		s := p.FaultStats()
		delayed += s.Delayed
		duplicated += s.Duplicated
	}
	if delayed == 0 || duplicated == 0 {
		t.Fatalf("fault injector idle: delayed=%d duplicated=%d", delayed, duplicated)
	}
}
