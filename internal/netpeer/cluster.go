package netpeer

import (
	"fmt"
	"time"

	"p2prank/internal/dprcore"
	"p2prank/internal/nodeid"
	"p2prank/internal/pagerank"
	"p2prank/internal/partition"
	"p2prank/internal/pastry"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

// ClusterConfig parameterizes StartCluster. The algorithm knobs (Alg,
// Alpha, SendProb, Fault, Observer, …) live in the embedded
// dprcore.Params and are handed to every peer unchanged; an Observer
// is shared by all peers of the cluster (the collectors are
// goroutine-safe and keyed by ranker index).
type ClusterConfig struct {
	// Params are the shared DPR loop parameters (see dprcore.Params).
	dprcore.Params
	// K is the number of peers.
	K int
	// Strategy is the partitioning strategy (default BySite).
	Strategy partition.Strategy
	// MeanWait is each peer's mean loop pause (default 30ms).
	MeanWait time.Duration
	// Indirect switches the cluster to §4.4 indirect transmission:
	// score frames hop along the Pastry overlay through intermediate
	// peers instead of going point-to-point.
	Indirect bool
	// Codec optionally replaces gob framing with a compact wire codec
	// shared by all peers (see internal/codec).
	Codec transport.ChunkCodec
	// Seed makes partitioning and waits reproducible (default 1).
	Seed uint64
}

// Cluster is a set of live peers ranking one crawl on localhost.
type Cluster struct {
	// Peers holds the live peers, indexed by group.
	Peers []*Peer
	// Assignment is the page partition the peers rank under.
	Assignment *partition.Assignment
	// Reference is the centralized fixed point R*.
	Reference vecmath.Vec

	graph *webgraph.Graph
}

// StartCluster computes the centralized reference, partitions g over K
// groups, starts one TCP peer per group on 127.0.0.1, interconnects
// them, and starts their ranking loops.
func StartCluster(g *webgraph.Graph, cfg ClusterConfig) (*Cluster, error) {
	if g == nil {
		return nil, fmt.Errorf("netpeer: nil graph")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("netpeer: K = %d, must be positive", cfg.K)
	}
	if cfg.MeanWait < 0 {
		return nil, fmt.Errorf("netpeer: negative MeanWait")
	}
	if cfg.MeanWait == 0 && cfg.T1 == 0 && cfg.T2 == 0 {
		cfg.MeanWait = 30 * time.Millisecond
	}
	// Resolve the shared parameters up front: Alpha feeds the reference
	// and group construction below, before any peer validates them again.
	cfg.Params.Defaults(float64(cfg.MeanWait), float64(cfg.MeanWait))
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("netpeer: %w", err)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ref, err := pagerank.Open(g, pagerank.Options{Alpha: cfg.Alpha, Epsilon: 1e-12, MaxIter: 100000})
	if err != nil {
		return nil, fmt.Errorf("netpeer: centralized reference: %w", err)
	}
	ids := make([]nodeid.ID, cfg.K)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("p2prank-ranker-%d", i))
	}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		return nil, err
	}
	assign, err := partition.Assign(g, ov, cfg.Strategy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	groups, err := dprcore.BuildGroups(g, assign, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{Assignment: assign, Reference: ref.Ranks, graph: g}
	for i := 0; i < cfg.K; i++ {
		pcfg := Config{
			Params:   cfg.Params,
			Group:    groups[i],
			MeanWait: cfg.MeanWait,
			Seed:     cfg.Seed + uint64(i)*7919,
			Codec:    cfg.Codec,
		}
		if cfg.Indirect {
			pcfg.Overlay = ov
		}
		peer, err := Listen("127.0.0.1:0", pcfg)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Peers = append(cl.Peers, peer)
	}
	for _, p := range cl.Peers {
		for j, q := range cl.Peers {
			if p != q {
				p.SetPeer(int32(j), q.Addr())
			}
		}
	}
	for _, p := range cl.Peers {
		p.Start()
	}
	return cl, nil
}

// Assemble snapshots every peer's local ranks into one global vector.
func (cl *Cluster) Assemble() vecmath.Vec {
	out := vecmath.NewVec(cl.graph.NumPages())
	for i, p := range cl.Peers {
		r := p.Ranks()
		for li, page := range cl.Assignment.Pages[i] {
			out[page] = r[li]
		}
	}
	return out
}

// RelErr returns the current relative error against the centralized
// reference.
func (cl *Cluster) RelErr() float64 {
	return vecmath.RelErr1(cl.Assemble(), cl.Reference)
}

// WaitConverged polls until the relative error drops to target or the
// timeout expires.
func (cl *Cluster) WaitConverged(target float64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if re := cl.RelErr(); re <= target {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("netpeer: not converged to %v within %v (rel err %v)",
				target, timeout, cl.RelErr())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Close shuts every peer down.
func (cl *Cluster) Close() {
	for _, p := range cl.Peers {
		if p != nil {
			p.Close()
		}
	}
}
