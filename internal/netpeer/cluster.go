package netpeer

import (
	"fmt"
	"sync"
	"time"

	"p2prank/internal/dprcore"
	"p2prank/internal/nodeid"
	"p2prank/internal/overlay"
	"p2prank/internal/pagerank"
	"p2prank/internal/partition"
	"p2prank/internal/pastry"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
	"p2prank/internal/xrand"
)

// ClusterConfig parameterizes StartCluster. The algorithm knobs (Alg,
// Alpha, SendProb, Fault, Observer, …) live in the embedded
// dprcore.Params and are handed to every peer unchanged; an Observer
// is shared by all peers of the cluster (the collectors are
// goroutine-safe and keyed by ranker index).
type ClusterConfig struct {
	// Params are the shared DPR loop parameters (see dprcore.Params).
	dprcore.Params
	// K is the number of peers.
	K int
	// Strategy is the partitioning strategy (default BySite).
	Strategy partition.Strategy
	// MeanWait is each peer's mean loop pause (default 30ms).
	MeanWait time.Duration
	// Indirect switches the cluster to §4.4 indirect transmission:
	// score frames hop along the Pastry overlay through intermediate
	// peers instead of going point-to-point.
	Indirect bool
	// Codec optionally replaces gob framing with a compact wire codec
	// shared by all peers (see internal/codec).
	Codec transport.ChunkCodec
	// Seed makes partitioning and waits reproducible (default 1).
	Seed uint64
	// CheckpointDir, when non-empty, persists every peer's loop state
	// to <dir>/ranker-NNN.ckpt on the CheckpointEvery round cadence
	// (default every 5 rounds), and restarts recover from those files.
	CheckpointDir string
	// CheckpointEvery overrides the checkpoint cadence in rounds.
	// Requires CheckpointDir.
	CheckpointEvery int64
	// Supervise starts a cluster supervisor goroutine that probes peer
	// liveness and rebuilds dead peers — from their checkpoint file when
	// CheckpointDir is set, cold otherwise.
	Supervise bool
	// ProbeEvery is the supervisor's probe cadence (default 50ms).
	ProbeEvery time.Duration
	// Churn schedules abrupt peer kills relative to cluster start —
	// the integration harness for the failure model. Pair it with
	// Supervise so the kills are also recovered from.
	Churn []PeerChurn
}

// PeerChurn kills one peer a fixed delay after the cluster starts.
type PeerChurn struct {
	// Ranker is the victim's group index.
	Ranker int
	// After is the kill delay from StartCluster's return.
	After time.Duration
}

// Cluster is a set of live peers ranking one crawl on localhost.
type Cluster struct {
	// Peers holds the live peers, indexed by group. When the cluster
	// supervises (ClusterConfig.Supervise), entries are swapped on
	// restart — use Peer for a race-free read.
	Peers []*Peer
	// Assignment is the page partition the peers rank under.
	Assignment *partition.Assignment
	// Reference is the centralized fixed point R*.
	Reference vecmath.Vec

	graph  webgraph.Store
	cfg    ClusterConfig
	groups []*dprcore.Group
	ov     overlay.Network
	ckpt   *dprcore.FileCheckpointer
	sup    *dprcore.Supervisor

	// mu guards Peers (restarts swap entries) and timers.
	mu     sync.Mutex
	timers []*time.Timer
	stop   chan struct{}
	wg     sync.WaitGroup
}

// StartCluster computes the centralized reference, partitions g over K
// groups, starts one TCP peer per group on 127.0.0.1, interconnects
// them, and starts their ranking loops.
func StartCluster(g webgraph.Store, cfg ClusterConfig) (*Cluster, error) {
	if g == nil {
		return nil, fmt.Errorf("netpeer: nil graph")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("netpeer: K = %d, must be positive", cfg.K)
	}
	if cfg.MeanWait < 0 {
		return nil, fmt.Errorf("netpeer: negative MeanWait")
	}
	if cfg.MeanWait == 0 && cfg.T1 == 0 && cfg.T2 == 0 {
		cfg.MeanWait = 30 * time.Millisecond
	}
	// Resolve the shared parameters up front: Alpha feeds the reference
	// and group construction below, before any peer validates them again.
	cfg.Params.Defaults(float64(cfg.MeanWait), float64(cfg.MeanWait))
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("netpeer: %w", err)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("netpeer: negative CheckpointEvery")
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("netpeer: CheckpointEvery needs CheckpointDir")
	}
	if cfg.ProbeEvery < 0 {
		return nil, fmt.Errorf("netpeer: negative ProbeEvery")
	}
	if cfg.Supervise && cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = 50 * time.Millisecond
	}
	for _, ev := range cfg.Churn {
		if ev.Ranker < 0 || ev.Ranker >= cfg.K {
			return nil, fmt.Errorf("netpeer: churn ranker %d outside [0,%d)", ev.Ranker, cfg.K)
		}
		if ev.After <= 0 {
			return nil, fmt.Errorf("netpeer: churn delay %v must be positive", ev.After)
		}
	}
	ref, err := pagerank.Open(g, pagerank.Options{Alpha: cfg.Alpha, Epsilon: 1e-12, MaxIter: 100000})
	if err != nil {
		return nil, fmt.Errorf("netpeer: centralized reference: %w", err)
	}
	ids := make([]nodeid.ID, cfg.K)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("p2prank-ranker-%d", i))
	}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		return nil, err
	}
	assign, err := partition.Assign(g, ov, cfg.Strategy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	groups, err := dprcore.BuildGroups(g, assign, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		Assignment: assign, Reference: ref.Ranks, graph: g,
		groups: groups, stop: make(chan struct{}),
	}
	if cfg.Indirect {
		cl.ov = ov
	}
	if cfg.CheckpointDir != "" {
		if cfg.CheckpointEvery == 0 {
			cfg.CheckpointEvery = 5
		}
		fc, err := dprcore.NewFileCheckpointer(cfg.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("netpeer: %w", err)
		}
		cl.ckpt = fc
		cfg.Params.Checkpoint = dprcore.CheckpointConfig{Every: cfg.CheckpointEvery, Sink: fc}
	}
	cl.cfg = cfg
	for i := 0; i < cfg.K; i++ {
		peer, err := cl.newPeer(i)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Peers = append(cl.Peers, peer)
	}
	for _, p := range cl.Peers {
		for j, q := range cl.Peers {
			if p != q {
				p.SetPeer(int32(j), q.Addr())
			}
		}
	}
	for _, p := range cl.Peers {
		p.Start()
	}
	if cfg.Supervise {
		sup, err := dprcore.NewSupervisor(clusterSet{cl}, wallClock{},
			xrand.New(cfg.Seed^0xda3e39cb94b95bdb),
			dprcore.SupervisorConfig{ProbeEvery: float64(cfg.ProbeEvery)})
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.sup = sup
		cl.wg.Add(1)
		go func() {
			defer cl.wg.Done()
			sup.Run(stopWaiter{stop: cl.stop})
		}()
	}
	for _, ev := range cfg.Churn {
		ev := ev
		cl.mu.Lock()
		cl.timers = append(cl.timers, time.AfterFunc(ev.After, func() {
			if p := cl.Peer(ev.Ranker); p != nil {
				p.Kill()
			}
		}))
		cl.mu.Unlock()
	}
	return cl, nil
}

// newPeer builds and binds the peer for group i with the cluster's
// shared parameters. The caller starts it and meshes its address.
func (cl *Cluster) newPeer(i int) (*Peer, error) {
	pcfg := Config{
		Params:   cl.cfg.Params,
		Group:    cl.groups[i],
		MeanWait: cl.cfg.MeanWait,
		Seed:     cl.cfg.Seed + uint64(i)*7919,
		Codec:    cl.cfg.Codec,
		Overlay:  cl.ov,
	}
	// Peer seeds differ per node, but the fault lattice (partition and
	// straggler membership) must be cut identically by every injector
	// in the cluster — key it off the cluster seed, not the peer's.
	if pcfg.Fault.Enabled() && pcfg.Fault.Seed == 0 {
		pcfg.Fault.Seed = cl.cfg.Seed
	}
	return Listen("127.0.0.1:0", pcfg)
}

// restartPeer rebuilds the peer for group i: close whatever is left of
// the old one, bind a fresh peer, warm-start it from the last
// checkpoint file when checkpointing is on, splice it into the mesh
// (its port is new), and start it.
func (cl *Cluster) restartPeer(i int) error {
	cl.mu.Lock()
	old := cl.Peers[i]
	cl.mu.Unlock()
	if old != nil {
		old.Close() // idempotent; covers "looks dead but still up"
	}
	peer, err := cl.newPeer(i)
	if err != nil {
		return err
	}
	if cl.ckpt != nil {
		data, ok, err := cl.ckpt.Load(i)
		if err != nil {
			peer.Close()
			return err
		}
		if ok {
			if err := peer.RestoreSnapshot(data); err != nil {
				peer.Close()
				return err
			}
		}
	}
	cl.mu.Lock()
	cl.Peers[i] = peer
	for j, q := range cl.Peers {
		if j == i || q == nil {
			continue
		}
		peer.SetPeer(int32(j), q.Addr())
		q.SetPeer(int32(i), peer.Addr())
		// Senders that gave the dead peer up resume immediately.
		q.ClearBroken(i)
	}
	cl.mu.Unlock()
	peer.Start()
	return nil
}

// clusterSet adapts a Cluster to dprcore.Supervised.
type clusterSet struct{ cl *Cluster }

func (s clusterSet) NumRankers() int { return s.cl.cfg.K }

// Alive combines socket-level liveness (the peer was killed or closed)
// with the reliable layer's missed-ack signal: a peer some other
// sender's circuit breaker has given up on is presumed dead even if its
// listener still accepts.
func (s clusterSet) Alive(i int) bool {
	p := s.cl.Peer(i)
	if p == nil || !p.Alive() {
		return false
	}
	s.cl.mu.Lock()
	defer s.cl.mu.Unlock()
	for j, q := range s.cl.Peers {
		if j != i && q != nil && q.Broken(i) {
			return false
		}
	}
	return true
}

func (s clusterSet) Restart(i int) error { return s.cl.restartPeer(i) }

// Peer returns the live peer for group i — race-free against
// supervisor restarts, unlike indexing Peers directly.
func (cl *Cluster) Peer(i int) *Peer {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if i < 0 || i >= len(cl.Peers) {
		return nil
	}
	return cl.Peers[i]
}

// Restarts returns how many peer restarts the cluster supervisor has
// performed (zero when Supervise is off).
func (cl *Cluster) Restarts() int64 {
	if cl.sup == nil {
		return 0
	}
	return cl.sup.Restarts()
}

// Assemble snapshots every peer's local ranks into one global vector.
func (cl *Cluster) Assemble() vecmath.Vec {
	out := vecmath.NewVec(cl.graph.NumPages())
	cl.mu.Lock()
	peers := append([]*Peer(nil), cl.Peers...)
	cl.mu.Unlock()
	for i, p := range peers {
		r := p.Ranks()
		for li, page := range cl.Assignment.Pages[i] {
			out[page] = r[li]
		}
	}
	return out
}

// RelErr returns the current relative error against the centralized
// reference.
func (cl *Cluster) RelErr() float64 {
	return vecmath.RelErr1(cl.Assemble(), cl.Reference)
}

// WaitConverged polls until the relative error drops to target or the
// timeout expires.
func (cl *Cluster) WaitConverged(target float64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if re := cl.RelErr(); re <= target {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("netpeer: not converged to %v within %v (rel err %v)",
				target, timeout, cl.RelErr())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Close shuts the cluster down: the supervisor stops first (so no
// restart races the teardown), then the churn timers, then every peer.
func (cl *Cluster) Close() {
	select {
	case <-cl.stop:
	default:
		close(cl.stop)
	}
	cl.wg.Wait()
	cl.mu.Lock()
	timers := cl.timers
	peers := append([]*Peer(nil), cl.Peers...)
	cl.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	for _, p := range peers {
		if p != nil {
			p.Close()
		}
	}
}
