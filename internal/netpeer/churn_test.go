package netpeer

import (
	"testing"
	"time"

	"p2prank/internal/dprcore"
	"p2prank/internal/telemetry"
)

// churnClusterConfig is the live churn harness: reliable delivery with
// a retransmission timeout below the mean send cadence (so an unacked
// chunk retries before a fresh round supersedes it), checkpoints on
// disk every 3 rounds, a supervisor probing every 25ms, and one peer
// killed mid-run.
func churnClusterConfig(t *testing.T, k int, kill int, after time.Duration) ClusterConfig {
	t.Helper()
	return ClusterConfig{
		Params: dprcore.Params{
			Alg:      dprcore.DPR1,
			Reliable: dprcore.ReliableConfig{Timeout: float64(8 * time.Millisecond)},
		},
		K:               k,
		MeanWait:        10 * time.Millisecond,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 3,
		Supervise:       true,
		ProbeEvery:      25 * time.Millisecond,
		Churn:           []PeerChurn{{Ranker: kill, After: after}},
	}
}

// TestClusterKillRestartConverges is the tentpole's live acceptance: a
// peer is killed mid-run, the supervisor rebuilds it from its last
// checkpoint file on a fresh port, and the cluster still converges to
// the fault-free tolerance. The reliable layer must have retried while
// the peer was down.
func TestClusterKillRestartConverges(t *testing.T) {
	g := genGraph(t, 1200, 1)
	cl, err := StartCluster(g, churnClusterConfig(t, 4, 1, 250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	victim := cl.Peer(1)
	deadline := time.Now().Add(15 * time.Second)
	for cl.Restarts() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("supervisor performed no restart in 15s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cl.Peer(1) == victim {
		t.Fatal("restart did not replace the killed peer")
	}
	if !cl.Peer(1).Alive() {
		t.Fatal("restarted peer not alive")
	}
	if cl.Peer(1).Loops() == 0 {
		// Warm start: the checkpoint carried the victim's loop counter.
		t.Fatal("restarted peer started cold despite checkpoints")
	}
	if err := cl.WaitConverged(1e-6, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	var retries int64
	for i := 0; i < 4; i++ {
		retries += cl.Peer(i).ReliableStats().Retries
	}
	if retries == 0 {
		t.Fatal("no retransmissions while a peer was down")
	}
}

// TestClusterChurnMetricsMidRun scrapes /metrics during a churned lossy
// run: the reliability and recovery counters must be exposed and move —
// nonzero p2prank_retries_total (retransmissions under loss) and
// p2prank_recoveries_total (the checkpointed restart).
func TestClusterChurnMetricsMidRun(t *testing.T) {
	g := genGraph(t, 1200, 3)
	col := telemetry.NewLiveCollector(4)
	srv, err := telemetry.Serve("127.0.0.1:0", col)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := churnClusterConfig(t, 4, 2, 200*time.Millisecond)
	cfg.Fault = dprcore.FaultConfig{DropProb: 0.2}
	cfg.Observer = col
	cl, err := StartCluster(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	deadline := time.Now().Add(20 * time.Second)
	var retries, recoveries, acks float64
	for {
		body := scrape(t, srv.URL()+"/metrics")
		retries = metricSum(t, body, "p2prank_retries_total")
		recoveries = metricSum(t, body, "p2prank_recoveries_total")
		acks = metricSum(t, body, "p2prank_acks_total")
		if retries > 0 && recoveries > 0 && acks > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reliability counters flat after 20s: retries=%v recoveries=%v acks=%v",
				retries, recoveries, acks)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cl.WaitConverged(1e-4, 30*time.Second); err != nil {
		t.Fatal(err)
	}
}
