// Package netpeer runs page rankers as real network peers: each peer
// listens on a TCP socket, executes its asynchronous DPR loop in its own
// goroutine on wall-clock time, and exchanges score vectors with the
// other rankers over length-delimited gob frames.
//
// The simulator (internal/engine) is where the paper's measurements
// come from; netpeer exists to demonstrate that the same algorithms run
// unchanged over real sockets, real concurrency, and real partial
// failure (a peer can be stopped and the rest keep converging). Peers
// default to direct transmission — with a static in-process cluster
// every peer knows every address, the regime the paper says direct
// transmission suits (small N) — and optionally to indirect
// transmission, forwarding score frames hop-by-hop along a structured
// overlay exactly as §4.4 describes, batching chunks that share a next
// hop into one frame.
package netpeer

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"p2prank/internal/overlay"
	"p2prank/internal/pagerank"
	"p2prank/internal/ranker"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/xrand"
)

// Config parameterizes one peer.
type Config struct {
	// Group is the peer's page group (from ranker.BuildGroups).
	Group *ranker.Group
	// Alg selects DPR1 or DPR2.
	Alg ranker.Algorithm
	// Alpha is the real-link rank fraction (default 0.85).
	Alpha float64
	// InnerEpsilon is DPR1's inner threshold (default 1e-10).
	InnerEpsilon float64
	// SendProb is the paper's p, applied per destination per loop
	// (default 1).
	SendProb float64
	// MeanWait is the mean of the exponentially distributed pause
	// between loops (default 50ms).
	MeanWait time.Duration
	// Seed drives the peer's private randomness (default 1).
	Seed uint64
	// Overlay, when non-nil, switches the peer to indirect
	// transmission: frames hop along overlay routes (NextHop over
	// ranker indices) instead of going straight to their destination.
	// All peers of a cluster must share the same overlay construction.
	Overlay overlay.Network
	// Codec, when non-nil, replaces gob framing with length-prefixed
	// codec encodings (see internal/codec) — compact, and lossy codecs
	// genuinely quantize the exchanged scores. All peers of a cluster
	// must use the same codec.
	Codec transport.ChunkCodec
}

func (c *Config) validate() error {
	if c.Group == nil {
		return errors.New("netpeer: Group is required")
	}
	if c.Alg != ranker.DPR1 && c.Alg != ranker.DPR2 {
		return fmt.Errorf("netpeer: unknown algorithm %d", int(c.Alg))
	}
	if c.Alpha == 0 {
		c.Alpha = 0.85
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("netpeer: alpha = %v out of range", c.Alpha)
	}
	if c.InnerEpsilon == 0 {
		c.InnerEpsilon = 1e-10
	}
	if c.InnerEpsilon < 0 {
		return fmt.Errorf("netpeer: negative InnerEpsilon")
	}
	if c.SendProb == 0 {
		c.SendProb = 1
	}
	if c.SendProb < 0 || c.SendProb > 1 {
		return fmt.Errorf("netpeer: SendProb %v out of range", c.SendProb)
	}
	if c.MeanWait == 0 {
		c.MeanWait = 50 * time.Millisecond
	}
	if c.MeanWait < 0 {
		return fmt.Errorf("netpeer: negative MeanWait")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// frame is the single wire message: a batch of score chunks.
type frame struct {
	Chunks []transport.ScoreChunk
}

// Peer is one live page ranker.
type Peer struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	r      vecmath.Vec
	x      vecmath.Vec
	latest map[int32]transport.ScoreChunk
	peers  map[int32]string

	connMu   sync.Mutex
	conns    map[int32]*peerConn
	accepted map[net.Conn]struct{}

	loops   atomic.Int64
	sent    atomic.Int64
	relayed atomic.Int64
	started atomic.Bool
	stop    chan struct{}
	wg      sync.WaitGroup
	rng     *xrand.Rand // loop goroutine only
	wire    wireFormat
}

type peerConn struct {
	c net.Conn
	// wmu serializes writeFrame calls: the rank loop and forwarding
	// readLoops may send on the same connection concurrently, and
	// frame writers are not goroutine-safe.
	wmu sync.Mutex
	w   frameWriter
}

func (pc *peerConn) write(f frame) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	return pc.w.writeFrame(f)
}

// Listen creates a peer bound to addr ("127.0.0.1:0" picks a free
// port) and starts accepting score traffic. Call SetPeer to teach it
// the other rankers' addresses, then Start to begin ranking.
func Listen(addr string, cfg Config) (*Peer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netpeer: listen: %w", err)
	}
	p := &Peer{
		cfg:      cfg,
		ln:       ln,
		r:        vecmath.NewVec(cfg.Group.N()),
		x:        vecmath.NewVec(cfg.Group.N()),
		latest:   make(map[int32]transport.ScoreChunk),
		peers:    make(map[int32]string),
		conns:    make(map[int32]*peerConn),
		accepted: make(map[net.Conn]struct{}),
		stop:     make(chan struct{}),
		rng:      xrand.New(cfg.Seed),
		wire:     gobWire{},
	}
	if cfg.Codec != nil {
		p.wire = codecWire{codec: cfg.Codec}
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the peer's listen address.
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// Group returns the peer's ranker index.
func (p *Peer) Group() int { return p.cfg.Group.Index }

// SetPeer registers the address of another ranker's group.
func (p *Peer) SetPeer(group int32, addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.peers[group] = addr
}

// Loops returns the number of main-loop iterations executed.
func (p *Peer) Loops() int64 { return p.loops.Load() }

// ChunksSent returns the number of score chunks shipped.
func (p *Peer) ChunksSent() int64 { return p.sent.Load() }

// ChunksRelayed returns the number of chunks this peer forwarded on
// behalf of others (indirect transmission only).
func (p *Peer) ChunksRelayed() int64 { return p.relayed.Load() }

// Ranks returns a snapshot of the peer's current local rank vector.
func (p *Peer) Ranks() vecmath.Vec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.r.Clone()
}

// Start launches the ranking loop. It is idempotent.
func (p *Peer) Start() {
	if p.started.Swap(true) {
		return
	}
	p.wg.Add(1)
	go p.rankLoop()
}

// Close stops the loop, the listener, and all connections, then waits
// for the peer's goroutines to exit.
func (p *Peer) Close() error {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	err := p.ln.Close()
	p.connMu.Lock()
	for _, pc := range p.conns {
		pc.c.Close()
	}
	p.conns = make(map[int32]*peerConn)
	// Inbound connections block their readLoops in Decode until the
	// remote side closes; close them here so Close never deadlocks on
	// peers that outlive us.
	for c := range p.accepted {
		c.Close()
	}
	p.connMu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.connMu.Lock()
		p.accepted[conn] = struct{}{}
		p.connMu.Unlock()
		p.wg.Add(1)
		go p.readLoop(conn)
	}
}

func (p *Peer) readLoop(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		conn.Close()
		p.connMu.Lock()
		delete(p.accepted, conn)
		p.connMu.Unlock()
	}()
	dec := p.wire.newReader(conn)
	for {
		f, err := dec.readFrame()
		if err != nil {
			return // connection closed or corrupt; peer will resend
		}
		var forward []transport.ScoreChunk
		p.mu.Lock()
		for _, c := range f.Chunks {
			if int(c.DstGroup) != p.cfg.Group.Index {
				if p.cfg.Overlay != nil {
					forward = append(forward, c)
				}
				// Without an overlay a misrouted chunk is dropped.
				continue
			}
			if prev, ok := p.latest[c.SrcGroup]; !ok || c.Round > prev.Round {
				p.latest[c.SrcGroup] = c
			}
		}
		p.mu.Unlock()
		if len(forward) > 0 {
			// Unpack-and-recombine of Figure 4: forwarded chunks that
			// share a next hop ride one frame.
			p.relayed.Add(int64(len(forward)))
			p.dispatch(forward)
		}
	}
}

func (p *Peer) rankLoop() {
	defer p.wg.Done()
	for {
		wait := time.Duration(p.rng.Exp(float64(p.cfg.MeanWait)))
		select {
		case <-p.stop:
			return
		case <-time.After(wait):
		}
		p.dispatch(p.step())
	}
}

// dispatch ships chunks toward their destination groups: one frame per
// destination with direct transmission, one frame per next overlay hop
// with indirect transmission.
func (p *Peer) dispatch(chunks []transport.ScoreChunk) {
	if len(chunks) == 0 {
		return
	}
	if p.cfg.Overlay == nil {
		for _, c := range chunks {
			p.sendFrame(c.DstGroup, []transport.ScoreChunk{c})
		}
		return
	}
	self := p.cfg.Group.Index
	byHop := make(map[int32][]transport.ScoreChunk)
	for _, c := range chunks {
		next := p.cfg.Overlay.NextHop(self, p.cfg.Overlay.NodeID(int(c.DstGroup)))
		if next == self {
			// The overlay says the chunk is already home; with static
			// membership this cannot happen for a foreign DstGroup.
			continue
		}
		byHop[int32(next)] = append(byHop[int32(next)], c)
	}
	for hop, cs := range byHop {
		p.sendFrame(hop, cs)
	}
}

// step runs one DPR loop body under the state lock and returns the Y
// chunks to publish.
func (p *Peer) step() []transport.ScoreChunk {
	p.mu.Lock()
	defer p.mu.Unlock()
	grp := p.cfg.Group
	// Refresh X from the newest chunk per source, in stable order.
	p.x.Zero()
	for _, src := range sortedKeys(p.latest) {
		for _, e := range p.latest[src].Entries {
			p.x[e.DstLocal] += e.Value
		}
	}
	switch p.cfg.Alg {
	case ranker.DPR1:
		res, err := grp.Sys.Solve(p.r, p.x, pagerank.Options{
			Alpha:   p.cfg.Alpha,
			Epsilon: p.cfg.InnerEpsilon,
			MaxIter: 10000,
		})
		if err != nil {
			// ‖A‖∞ < 1 guarantees inner convergence; this is a
			// configuration error worth crashing the peer for.
			panic(fmt.Sprintf("netpeer %d: inner solve: %v", grp.Index, err))
		}
		p.r = res.Ranks
	case ranker.DPR2:
		next := vecmath.NewVec(grp.N())
		grp.Sys.Step(next, p.r, p.x)
		p.r = next
	}
	round := p.loops.Add(1)
	var out []transport.ScoreChunk
	for _, dst := range grp.EffDsts {
		if p.cfg.SendProb < 1 && p.rng.Float64() >= p.cfg.SendProb {
			continue
		}
		chunk := transport.ScoreChunk{
			SrcGroup: int32(grp.Index),
			DstGroup: dst,
			Round:    round,
		}
		for _, e := range grp.Eff[dst] {
			v := float64(e.Links) * p.cfg.Alpha * p.r[e.LocalSrc] / float64(grp.Deg[e.LocalSrc])
			chunk.Links += int64(e.Links)
			n := len(chunk.Entries)
			if n > 0 && chunk.Entries[n-1].DstLocal == e.DstLocal {
				chunk.Entries[n-1].Value += v
			} else {
				chunk.Entries = append(chunk.Entries, transport.ScoreEntry{DstLocal: e.DstLocal, Value: v})
			}
		}
		out = append(out, chunk)
	}
	return out
}

// sendFrame ships a batch of chunks to the peer of the given group,
// dialing lazily and dropping the frame on any network error (the
// algorithms tolerate loss; the next loop resends fresher scores).
func (p *Peer) sendFrame(group int32, chunks []transport.ScoreChunk) {
	p.mu.Lock()
	addr, ok := p.peers[group]
	p.mu.Unlock()
	if !ok {
		return // destination not known yet
	}
	pc, err := p.conn(group, addr)
	if err != nil {
		return
	}
	if err := pc.write(frame{Chunks: chunks}); err != nil {
		// Drop the broken connection; the next send re-dials.
		p.connMu.Lock()
		if cur, ok := p.conns[group]; ok && cur == pc {
			cur.c.Close()
			delete(p.conns, group)
		}
		p.connMu.Unlock()
		return
	}
	p.sent.Add(int64(len(chunks)))
}

func (p *Peer) conn(group int32, addr string) (*peerConn, error) {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	if pc, ok := p.conns[group]; ok {
		return pc, nil
	}
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	pc := &peerConn{c: c, w: p.wire.newWriter(c)}
	p.conns[group] = pc
	return pc, nil
}

func sortedKeys(m map[int32]transport.ScoreChunk) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
