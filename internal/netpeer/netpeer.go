// Package netpeer runs page rankers as real network peers: each peer
// listens on a TCP socket, executes its asynchronous DPR loop in its own
// goroutine on wall-clock time, and exchanges score vectors with the
// other rankers over length-delimited gob frames.
//
// The simulator (internal/engine) is where the paper's measurements
// come from; netpeer exists to demonstrate that the same algorithms run
// unchanged over real sockets, real concurrency, and real partial
// failure (a peer can be stopped and the rest keep converging). The
// algorithms themselves live in internal/dprcore, shared verbatim with
// the simulator's driver (internal/ranker); this package only supplies
// the live runtime — wall-clock waits, a TCP transport, and the state
// lock that serializes loop phases against concurrent deliveries.
//
// Peers default to direct transmission — with a static in-process
// cluster every peer knows every address, the regime the paper says
// direct transmission suits (small N) — and optionally to indirect
// transmission, forwarding score frames hop-by-hop along a structured
// overlay exactly as §4.4 describes, batching chunks that share a next
// hop into one frame.
package netpeer

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"p2prank/internal/dprcore"
	"p2prank/internal/overlay"
	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/xrand"
)

// Config parameterizes one peer.
//
// The algorithm knobs (Alg, Alpha, InnerEpsilon, SendProb, T1/T2,
// Fault, Observer) live in the embedded dprcore.Params, the same
// configuration surface the simulator's engine.Config embeds — see
// DESIGN.md §9. On the live stack T1/T2 are wall-clock nanoseconds;
// most callers leave them zero and set MeanWait instead. An Observer
// that is a *telemetry.LiveCollector additionally gets the wall clock
// for trace timestamps and overlay route lengths for hop attribution.
type Config struct {
	// Params are the shared DPR loop parameters (see dprcore.Params).
	dprcore.Params
	// Group is the peer's page group (from dprcore.BuildGroups).
	Group *dprcore.Group
	// MeanWait is the mean of the exponentially distributed pause
	// between loops (default 50ms) — the convenience spelling of the
	// common fixed-mean case. When T1/T2 are zero it maps onto
	// T1 = T2 = MeanWait nanoseconds; explicit T1/T2 win.
	MeanWait time.Duration
	// Seed drives the peer's private randomness (default 1).
	Seed uint64
	// Overlay, when non-nil, switches the peer to indirect
	// transmission: frames hop along overlay routes (NextHop over
	// ranker indices) instead of going straight to their destination.
	// All peers of a cluster must share the same overlay construction.
	Overlay overlay.Network
	// Codec, when non-nil, replaces gob framing with length-prefixed
	// codec encodings (see internal/codec) — compact, and lossy codecs
	// genuinely quantize the exchanged scores. All peers of a cluster
	// must use the same codec.
	Codec transport.ChunkCodec
}

func (c *Config) validate() error {
	if c.Group == nil {
		return errors.New("netpeer: Group is required")
	}
	if c.MeanWait < 0 {
		return fmt.Errorf("netpeer: negative MeanWait")
	}
	if c.MeanWait == 0 && c.T1 == 0 && c.T2 == 0 {
		c.MeanWait = 50 * time.Millisecond
	}
	c.Params.Defaults(float64(c.MeanWait), float64(c.MeanWait))
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("netpeer: %w", err)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// frame is the single wire message: a batch of score chunks plus any
// cumulative delivery acknowledgements riding back (reliable mode).
type frame struct {
	Chunks []transport.ScoreChunk
	// Acks, when non-empty, acknowledges delivery end-to-end: group From
	// has delivered the receiver's chunks up to and including Round.
	Acks []wireAck
}

// wireAck is one cumulative acknowledgement for the reliable layer.
type wireAck struct {
	From  int32
	Round int64
}

// Peer is one live page ranker: a dprcore.Loop plus the TCP runtime
// that drives it.
type Peer struct {
	cfg Config
	ln  net.Listener

	// mu serializes the loop's phases (rank goroutine) against chunk
	// deliveries (read goroutines). Frames are never written while mu is
	// held — a peer blocked on a TCP write with its state locked would
	// stall its own readLoop and, under backpressure, deadlock a cycle
	// of peers. CommitPhase therefore emits into the outbox, and the
	// rank loop dispatches the drained chunks after unlocking.
	mu   sync.Mutex
	loop *dprcore.Loop

	out    *outbox
	faults *dprcore.FaultSender    // nil unless cfg.Fault.Enabled()
	rel    *dprcore.ReliableSender // nil unless cfg.Reliable.Enabled()

	peersMu sync.Mutex
	peers   map[int32]string

	connMu   sync.Mutex
	conns    map[int32]*peerConn
	accepted map[net.Conn]struct{}

	sent    atomic.Int64
	relayed atomic.Int64
	started atomic.Bool
	closed  atomic.Bool
	stop    chan struct{}
	wg      sync.WaitGroup
	wire    wireFormat
}

type peerConn struct {
	c net.Conn
	// wmu serializes writeFrame calls: the rank loop and forwarding
	// readLoops may send on the same connection concurrently, and
	// frame writers are not goroutine-safe.
	wmu sync.Mutex
	w   frameWriter
}

func (pc *peerConn) write(f frame) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	//p2plint:allow lockscope -- wmu exists to serialize this very write; no other lock nests under it
	return pc.w.writeFrame(f)
}

// outbox is the loop's Sender: CommitPhase runs under the peer's state
// lock, so sends are buffered here (self-locked — delayed fault
// re-injections append from timer goroutines) and dispatched by the
// rank loop after the lock is released.
type outbox struct {
	mu     sync.Mutex
	chunks []transport.ScoreChunk
}

//p2plint:hotpath -- commit-context buffering; one append per chunk per round
func (o *outbox) Send(from int, chunk transport.ScoreChunk) error {
	o.mu.Lock()
	o.chunks = append(o.chunks, chunk)
	o.mu.Unlock()
	return nil
}

// Flush is a no-op: the rank loop drains after every commit.
func (o *outbox) Flush(from int) error { return nil }

func (o *outbox) drain() []transport.ScoreChunk {
	o.mu.Lock()
	chunks := o.chunks
	o.chunks = nil
	o.mu.Unlock()
	return chunks
}

// stopWaiter is the peer's dprcore.Waiter: real sleeps, interruptible
// by Close.
type stopWaiter struct{ stop <-chan struct{} }

func (w stopWaiter) Wait(d float64) bool {
	select {
	case <-w.stop:
		return false
	case <-time.After(time.Duration(d)):
		return true
	}
}

// wallClock is the peer's dprcore.Clock — the only place the live
// stack touches wall time on behalf of the core. Times are float64
// nanoseconds, matching Config.MeanWait's unit after conversion.
type wallClock struct{}

func (wallClock) Now() float64 { return float64(time.Now().UnixNano()) }

func (wallClock) After(d float64, fn func()) { time.AfterFunc(time.Duration(d), fn) }

// Listen creates a peer bound to addr ("127.0.0.1:0" picks a free
// port) and starts accepting score traffic. Call SetPeer to teach it
// the other rankers' addresses, then Start to begin ranking.
func Listen(addr string, cfg Config) (*Peer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netpeer: listen: %w", err)
	}
	p := &Peer{
		cfg:      cfg,
		ln:       ln,
		out:      &outbox{},
		peers:    make(map[int32]string),
		conns:    make(map[int32]*peerConn),
		accepted: make(map[net.Conn]struct{}),
		stop:     make(chan struct{}),
		wire:     gobWire{},
	}
	var sender dprcore.Sender = p.out
	if cfg.Fault.Enabled() {
		// Faults draw from their own stream, keyed off the peer seed, so
		// enabling them never changes the loop's randomness. The
		// fault-lattice seed must NOT default from the peer seed: peer
		// seeds differ per node, and every injector in the cluster has
		// to agree on partition/straggler membership. Callers set
		// Fault.Seed cluster-wide (cluster.Start does).
		frng := xrand.New(cfg.Seed ^ 0x6c62272e07bb0142)
		fs, err := dprcore.NewFaultSender(p.out, wallClock{}, frng, cfg.Fault)
		if err != nil {
			ln.Close()
			return nil, err
		}
		fs.Observe(cfg.Observer)
		sender = fs
		p.faults = fs
	}
	if cfg.Reliable.Enabled() {
		// The reliable layer sits above the fault injector, so
		// retransmissions are themselves subject to injected loss. Its
		// jitter draws from a third seed-keyed stream.
		rrng := xrand.New(cfg.Seed ^ 0x2545f4914f6cdd1d)
		rel, err := dprcore.NewReliableSender(sender, wallClock{}, rrng, cfg.Reliable)
		if err != nil {
			ln.Close()
			return nil, err
		}
		rel.Observe(cfg.Observer)
		sender = rel
		p.rel = rel
	}
	if cfg.Observer != nil {
		// A collector that wants timestamps gets the wall clock (the live
		// stack's Clock), and one that wants hop counts gets overlay
		// route lengths — mirroring the simulator's wiring in
		// engine.build.
		if cs, ok := cfg.Observer.(telemetry.ClockSetter); ok {
			cs.SetClock(wallClock{})
		}
		if hs, ok := cfg.Observer.(telemetry.HopsSetter); ok {
			hs.SetHops(peerHops(cfg.Overlay))
		}
	}
	// Each peer resolves its loop's mean wait from [T1, T2] with its own
	// seed-keyed stream, so a heterogeneous wait range gives every peer a
	// distinct pace — the live analogue of the engine's per-ranker draw.
	mean := cfg.T1
	if cfg.T2 > cfg.T1 {
		mean += xrand.New(cfg.Seed^0x94d049bb133111eb).Float64() * (cfg.T2 - cfg.T1)
	}
	loop, err := dprcore.NewLoop(cfg.Group, cfg.Params, mean, sender, xrand.New(cfg.Seed))
	if err != nil {
		ln.Close()
		return nil, err
	}
	p.loop = loop
	if cfg.Codec != nil {
		p.wire = codecWire{codec: cfg.Codec}
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the peer's listen address.
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// Group returns the peer's ranker index.
func (p *Peer) Group() int { return p.cfg.Group.Index }

// SetPeer registers the address of another ranker's group.
func (p *Peer) SetPeer(group int32, addr string) {
	p.peersMu.Lock()
	defer p.peersMu.Unlock()
	p.peers[group] = addr
}

// Loops returns the number of main-loop iterations executed.
func (p *Peer) Loops() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loop.Loops()
}

// ChunksSent returns the number of score chunks shipped.
func (p *Peer) ChunksSent() int64 { return p.sent.Load() }

// ChunksRelayed returns the number of chunks this peer forwarded on
// behalf of others (indirect transmission only).
func (p *Peer) ChunksRelayed() int64 { return p.relayed.Load() }

// FaultCounts are one peer's injected-fault totals by kind.
type FaultCounts struct {
	Dropped, Delayed, Duplicated int64
	Partitioned, Straggled       int64
}

// FaultStats returns how many chunks the peer's fault injector
// dropped, delayed, duplicated, blackholed across a partition, or
// straggled (all zero when faults are off).
func (p *Peer) FaultStats() FaultCounts {
	if p.faults == nil {
		return FaultCounts{}
	}
	return FaultCounts{
		Dropped:     p.faults.Dropped(),
		Delayed:     p.faults.Delayed(),
		Duplicated:  p.faults.Duplicated(),
		Partitioned: p.faults.Partitioned(),
		Straggled:   p.faults.Straggled(),
	}
}

// ReliableStats returns the reliable layer's counters (all zero when
// the layer is off).
func (p *Peer) ReliableStats() dprcore.ReliableStats {
	if p.rel == nil {
		return dprcore.ReliableStats{}
	}
	return p.rel.Stats()
}

// Broken reports whether the peer's reliable layer currently presumes
// destination group dst dead (its circuit is open). Always false when
// the layer is off.
func (p *Peer) Broken(dst int) bool {
	return p.rel != nil && p.rel.Broken(dst)
}

// ClearBroken closes the reliable layer's circuit toward destination
// group dst — the cluster supervisor calls it after restarting that
// peer. A no-op when the layer is off.
func (p *Peer) ClearBroken(dst int) {
	if p.rel != nil {
		p.rel.ClearBreaker(dst)
	}
}

// Ranks returns a snapshot of the peer's current local rank vector.
func (p *Peer) Ranks() vecmath.Vec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loop.Ranks().Clone()
}

// RestoreSnapshot warm-starts the peer's loop from a dprcore checkpoint
// (see dprcore.Loop.Restore). It must be called before Start; pending
// chunks captured in the snapshot re-enter through the sender chain and
// ship with the first loop dispatch.
func (p *Peer) RestoreSnapshot(data []byte) error {
	if p.started.Load() {
		return fmt.Errorf("netpeer: RestoreSnapshot after Start")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loop.Restore(data)
}

// Start launches the ranking loop. It is idempotent.
func (p *Peer) Start() {
	if p.started.Swap(true) {
		return
	}
	p.wg.Add(1)
	go p.rankLoop()
}

// Kill is Close under its failure-model name: the cluster's churn
// schedule calls it to take a peer down mid-run. Nothing is flushed or
// handed over — recovery happens on the other side, when the supervisor
// builds a fresh peer from the last checkpoint file.
func (p *Peer) Kill() error { return p.Close() }

// Alive reports whether the peer has started ranking and has not been
// closed or killed.
func (p *Peer) Alive() bool { return p.started.Load() && !p.closed.Load() }

// Close stops the loop, the listener, and all connections, then waits
// for the peer's goroutines to exit. It is idempotent and safe to call
// concurrently (a churn kill can race the cluster's own shutdown).
func (p *Peer) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	close(p.stop)
	err := p.ln.Close()
	p.connMu.Lock()
	for _, pc := range p.conns {
		pc.c.Close()
	}
	p.conns = make(map[int32]*peerConn)
	// Inbound connections block their readLoops in Decode until the
	// remote side closes; close them here so Close never deadlocks on
	// peers that outlive us.
	for c := range p.accepted {
		c.Close()
	}
	p.connMu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.connMu.Lock()
		p.accepted[conn] = struct{}{}
		p.connMu.Unlock()
		p.wg.Add(1)
		go p.readLoop(conn)
	}
}

func (p *Peer) readLoop(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		conn.Close()
		p.connMu.Lock()
		delete(p.accepted, conn)
		p.connMu.Unlock()
	}()
	dec := p.wire.newReader(conn)
	for {
		f, err := dec.readFrame()
		if err != nil {
			return // connection closed or corrupt; peer will resend
		}
		if p.rel != nil {
			for _, a := range f.Acks {
				p.rel.Ack(p.cfg.Group.Index, a.From, a.Round)
			}
		}
		var forward []transport.ScoreChunk
		var acks map[int32]int64
		p.mu.Lock()
		for _, c := range f.Chunks {
			if int(c.DstGroup) != p.cfg.Group.Index {
				if p.cfg.Overlay != nil {
					forward = append(forward, c)
				}
				// Without an overlay a misrouted chunk is dropped.
				continue
			}
			p.loop.Deliver(c)
			if p.rel != nil {
				if acks == nil {
					acks = make(map[int32]int64)
				}
				if r, ok := acks[c.SrcGroup]; !ok || c.Round > r {
					acks[c.SrcGroup] = c.Round
				}
			}
		}
		p.mu.Unlock()
		if len(forward) > 0 {
			// Unpack-and-recombine of Figure 4: forwarded chunks that
			// share a next hop ride one frame.
			p.relayed.Add(int64(len(forward)))
			p.dispatch(forward)
		}
		// Acks are end-to-end control messages: straight back to the
		// source, never along the overlay, one cumulative round per
		// delivered source.
		for src, round := range acks {
			p.sendFrame(src, frame{Acks: []wireAck{{From: int32(p.cfg.Group.Index), Round: round}}})
		}
	}
}

// rankLoop is the peer's main loop: dprcore.Drive's wait/compute/commit
// cycle, inlined so the phases run under the state lock (deliveries
// arrive concurrently) and the emitted chunks go on the wire after the
// lock is released.
func (p *Peer) rankLoop() {
	defer p.wg.Done()
	w := stopWaiter{stop: p.stop}
	for w.Wait(p.loop.NextWait()) {
		p.mu.Lock()
		p.loop.ComputePhase()
		p.loop.CommitPhase()
		p.mu.Unlock()
		p.dispatch(p.out.drain())
	}
}

// dispatch ships chunks toward their destination groups: one frame per
// destination with direct transmission, one frame per next overlay hop
// with indirect transmission.
func (p *Peer) dispatch(chunks []transport.ScoreChunk) {
	if len(chunks) == 0 {
		return
	}
	if p.cfg.Overlay == nil {
		for _, c := range chunks {
			p.sendFrame(c.DstGroup, frame{Chunks: []transport.ScoreChunk{c}})
		}
		return
	}
	self := p.cfg.Group.Index
	byHop := make(map[int32][]transport.ScoreChunk)
	for _, c := range chunks {
		next := p.cfg.Overlay.NextHop(self, p.cfg.Overlay.NodeID(int(c.DstGroup)))
		if next == self {
			// The overlay says the chunk is already home; with static
			// membership this cannot happen for a foreign DstGroup.
			continue
		}
		byHop[int32(next)] = append(byHop[int32(next)], c)
	}
	for hop, cs := range byHop {
		p.sendFrame(hop, frame{Chunks: cs})
	}
}

// sendFrame ships one frame to the peer of the given group, dialing
// lazily and dropping the frame on any network error (the algorithms
// tolerate loss; the next loop resends fresher scores, and the reliable
// layer retries unacked chunks).
func (p *Peer) sendFrame(group int32, f frame) {
	p.peersMu.Lock()
	addr, ok := p.peers[group]
	p.peersMu.Unlock()
	if !ok {
		return // destination not known yet
	}
	pc, err := p.conn(group, addr)
	if err != nil {
		return
	}
	if err := pc.write(f); err != nil {
		// Drop the broken connection; the next send re-dials.
		p.connMu.Lock()
		if cur, ok := p.conns[group]; ok && cur == pc {
			cur.c.Close()
			delete(p.conns, group)
		}
		p.connMu.Unlock()
		return
	}
	p.sent.Add(int64(len(f.Chunks)))
}

// peerHops builds the hop-attribution function handed to a collector:
// constant 1 under direct transmission, overlay route length under
// indirect. Memoization is safe without a lock because collectors call
// the function under their own mutex and the overlay is static.
func peerHops(ov overlay.Network) func(src, dst int) int {
	if ov == nil {
		return func(src, dst int) int { return 1 }
	}
	memo := make(map[[2]int]int)
	return func(src, dst int) int {
		key := [2]int{src, dst}
		if h, ok := memo[key]; ok {
			return h
		}
		h := 1
		if path, err := overlay.Route(ov, src, ov.NodeID(dst)); err == nil && len(path) > 1 {
			h = len(path) - 1
		}
		memo[key] = h
		return h
	}
}

func (p *Peer) conn(group int32, addr string) (*peerConn, error) {
	p.connMu.Lock()
	pc, ok := p.conns[group]
	p.connMu.Unlock()
	if ok {
		return pc, nil
	}
	// Dial outside connMu: a 2s TCP timeout held under the lock would
	// stall every other sender (and Close) behind one dead peer.
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	p.connMu.Lock()
	defer p.connMu.Unlock()
	if cached, ok := p.conns[group]; ok {
		// A concurrent dialer won the race; keep its connection.
		c.Close()
		return cached, nil
	}
	pc = &peerConn{c: c, w: p.wire.newWriter(c)}
	p.conns[group] = pc
	return pc, nil
}
