package netpeer

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"

	"p2prank/internal/transport"
)

// wireFormat frames score chunks on a TCP connection. The default is
// gob (self-describing, zero setup); installing a transport.ChunkCodec
// switches to length-prefixed codec frames — the same compact encodings
// internal/codec provides for the simulator, now on a real socket. Both
// ends of a cluster must agree on the format.
type wireFormat interface {
	// newWriter wraps a connection for sending frames.
	newWriter(c net.Conn) frameWriter
	// newReader wraps a connection for receiving frames.
	newReader(c net.Conn) frameReader
}

type frameWriter interface {
	writeFrame(f frame) error
}

type frameReader interface {
	readFrame() (frame, error)
}

// gobWire is the default format.
type gobWire struct{}

func (gobWire) newWriter(c net.Conn) frameWriter { return &gobWriter{enc: gob.NewEncoder(c)} }
func (gobWire) newReader(c net.Conn) frameReader { return &gobReader{dec: gob.NewDecoder(c)} }

type gobWriter struct{ enc *gob.Encoder }

func (w *gobWriter) writeFrame(f frame) error { return w.enc.Encode(f) }

type gobReader struct{ dec *gob.Decoder }

func (r *gobReader) readFrame() (frame, error) {
	var f frame
	err := r.dec.Decode(&f)
	return f, err
}

// codecWire frames chunks as: uvarint chunk count, then per chunk a
// uvarint byte length followed by the codec encoding; then a uvarint
// ack count followed by per-ack uvarint group and round (the reliable
// layer's piggyback section — zero-count when reliability is off).
type codecWire struct {
	codec transport.ChunkCodec
}

func (cw codecWire) newWriter(c net.Conn) frameWriter {
	return &codecWriter{codec: cw.codec, w: bufio.NewWriter(c)}
}

func (cw codecWire) newReader(c net.Conn) frameReader {
	return &codecReader{codec: cw.codec, r: bufio.NewReader(c)}
}

type codecWriter struct {
	codec transport.ChunkCodec
	w     *bufio.Writer
	buf   []byte
	hdr   [binary.MaxVarintLen64]byte
}

func (w *codecWriter) writeFrame(f frame) error {
	n := binary.PutUvarint(w.hdr[:], uint64(len(f.Chunks)))
	if _, err := w.w.Write(w.hdr[:n]); err != nil {
		return err
	}
	for _, c := range f.Chunks {
		w.buf = w.codec.Encode(w.buf[:0], c)
		n := binary.PutUvarint(w.hdr[:], uint64(len(w.buf)))
		if _, err := w.w.Write(w.hdr[:n]); err != nil {
			return err
		}
		if _, err := w.w.Write(w.buf); err != nil {
			return err
		}
	}
	n = binary.PutUvarint(w.hdr[:], uint64(len(f.Acks)))
	if _, err := w.w.Write(w.hdr[:n]); err != nil {
		return err
	}
	for _, a := range f.Acks {
		n := binary.PutUvarint(w.hdr[:], uint64(uint32(a.From)))
		if _, err := w.w.Write(w.hdr[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(w.hdr[:], uint64(a.Round))
		if _, err := w.w.Write(w.hdr[:n]); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

type codecReader struct {
	codec transport.ChunkCodec
	r     *bufio.Reader
}

// maxFrameChunks, maxChunkBytes, and maxFrameAcks bound what a reader
// will allocate for one frame; a peer advertising more is broken or
// hostile.
const (
	maxFrameChunks = 1 << 20
	maxChunkBytes  = 1 << 26
	maxFrameAcks   = 1 << 20
)

func (r *codecReader) readFrame() (frame, error) {
	count, err := binary.ReadUvarint(r.r)
	if err != nil {
		return frame{}, err
	}
	if count > maxFrameChunks {
		return frame{}, fmt.Errorf("netpeer: frame advertises %d chunks", count)
	}
	f := frame{Chunks: make([]transport.ScoreChunk, 0, count)}
	for i := uint64(0); i < count; i++ {
		size, err := binary.ReadUvarint(r.r)
		if err != nil {
			return frame{}, err
		}
		if size > maxChunkBytes {
			return frame{}, fmt.Errorf("netpeer: chunk advertises %d bytes", size)
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(r.r, buf); err != nil {
			return frame{}, err
		}
		c, err := r.codec.Decode(buf)
		if err != nil {
			return frame{}, fmt.Errorf("netpeer: decoding chunk %d: %w", i, err)
		}
		f.Chunks = append(f.Chunks, c)
	}
	nacks, err := binary.ReadUvarint(r.r)
	if err != nil {
		return frame{}, err
	}
	if nacks > maxFrameAcks {
		return frame{}, fmt.Errorf("netpeer: frame advertises %d acks", nacks)
	}
	for i := uint64(0); i < nacks; i++ {
		from, err := binary.ReadUvarint(r.r)
		if err != nil {
			return frame{}, err
		}
		round, err := binary.ReadUvarint(r.r)
		if err != nil {
			return frame{}, err
		}
		f.Acks = append(f.Acks, wireAck{From: int32(uint32(from)), Round: int64(round)})
	}
	return f, nil
}
