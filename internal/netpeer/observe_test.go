package netpeer

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"p2prank/internal/dprcore"
	"p2prank/internal/telemetry"
)

// scrape fetches url and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricSum adds up every sample of a counter family across its label
// sets (e.g. the per-ranker rounds_total series).
func metricSum(t *testing.T, body, name string) float64 {
	t.Helper()
	var sum float64
	seen := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "# ") {
			continue
		}
		rest := line[len(name):]
		// Accept "name{labels} v" and "name v", not "name_bucket v".
		if !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		sum += v
		seen = true
	}
	if !seen {
		t.Fatalf("metric %s absent from scrape:\n%s", name, body)
	}
	return sum
}

// TestClusterMetricsScrapeMidRun attaches a live collector to a running
// TCP cluster, serves it over HTTP, and scrapes /metrics twice while
// the peers iterate: the round and chunk counters must be exposed in
// Prometheus text format and advance between scrapes.
func TestClusterMetricsScrapeMidRun(t *testing.T) {
	g := genGraph(t, 1500, 3)
	col := telemetry.NewLiveCollector(3)
	srv, err := telemetry.Serve("127.0.0.1:0", col)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := StartCluster(g, ClusterConfig{
		Params:   dprcore.Params{Alg: dprcore.DPR1, Observer: col},
		K:        3,
		MeanWait: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Wait until at least one full round has been recorded, then scrape.
	deadline := time.Now().Add(10 * time.Second)
	for col.Rounds() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no rounds recorded in 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	first := scrape(t, srv.URL()+"/metrics")
	rounds1 := metricSum(t, first, "p2prank_rounds_total")
	chunks1 := metricSum(t, first, "p2prank_chunks_sent_total")
	if rounds1 <= 0 {
		t.Fatalf("rounds_total = %v after first round", rounds1)
	}
	// The exposition format contract smoke-tested, not just presence:
	// HELP/TYPE headers and the per-ranker label.
	for _, want := range []string{
		"# TYPE p2prank_rounds_total counter",
		"# TYPE p2prank_residual gauge",
		`p2prank_rounds_total{ranker="0"}`,
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("scrape missing %q:\n%s", want, first)
		}
	}

	// Counters must advance while the loops keep running.
	grew := false
	for i := 0; i < 100 && !grew; i++ {
		time.Sleep(20 * time.Millisecond)
		body := scrape(t, srv.URL()+"/metrics")
		grew = metricSum(t, body, "p2prank_rounds_total") > rounds1 &&
			metricSum(t, body, "p2prank_chunks_sent_total") >= chunks1
	}
	if !grew {
		t.Fatal("p2prank_rounds_total did not advance between scrapes")
	}

	// The trace endpoint serves the JSONL ring.
	trace := scrape(t, srv.URL()+"/trace")
	if !strings.Contains(trace, `"event"`) {
		t.Fatalf("trace endpoint returned no events:\n%.200s", trace)
	}
}
