package netpeer

import (
	"testing"
	"time"

	"p2prank/internal/codec"
	"p2prank/internal/dprcore"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

func genGraph(t testing.TB, pages int, seed uint64) *webgraph.Graph {
	t.Helper()
	cfg := webgraph.DefaultGenConfig(pages)
	cfg.Seed = seed
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestClusterConvergesDPR1(t *testing.T) {
	g := genGraph(t, 1200, 1)
	cl, err := StartCluster(g, ClusterConfig{Params: dprcore.Params{Alg: dprcore.DPR1}, K: 4, MeanWait: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(1e-6, 20*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestClusterConvergesDPR2(t *testing.T) {
	g := genGraph(t, 1200, 1)
	cl, err := StartCluster(g, ClusterConfig{Params: dprcore.Params{Alg: dprcore.DPR2}, K: 4, MeanWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(1e-5, 30*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSurvivesPeerLoss(t *testing.T) {
	g := genGraph(t, 1000, 3)
	cl, err := StartCluster(g, ClusterConfig{Params: dprcore.Params{Alg: dprcore.DPR1}, K: 4, MeanWait: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Let the cluster make progress, then kill one peer. The others
	// must keep running and their rank vectors keep growing (their
	// sends to the dead peer fail silently, as the algorithm allows).
	time.Sleep(200 * time.Millisecond)
	dead := cl.Peers[2]
	dead.Close()
	loopsBefore := make([]int64, len(cl.Peers))
	for i, p := range cl.Peers {
		loopsBefore[i] = p.Loops()
	}
	time.Sleep(300 * time.Millisecond)
	for i, p := range cl.Peers {
		if i == 2 {
			continue
		}
		if p.Loops() <= loopsBefore[i] {
			t.Fatalf("peer %d stalled after peer 2 died", i)
		}
	}
}

func TestClusterWithLossConverges(t *testing.T) {
	g := genGraph(t, 1000, 5)
	cl, err := StartCluster(g, ClusterConfig{
		Params: dprcore.Params{Alg: dprcore.DPR1, SendProb: 0.7},
		K:      4, MeanWait: 8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(1e-5, 30*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestPeerMonotoneUnderRealAsync(t *testing.T) {
	g := genGraph(t, 800, 7)
	cl, err := StartCluster(g, ClusterConfig{Params: dprcore.Params{Alg: dprcore.DPR1}, K: 3, MeanWait: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	prev := cl.Assemble()
	for i := 0; i < 15; i++ {
		time.Sleep(40 * time.Millisecond)
		cur := cl.Assemble()
		if !vecmath.Dominates(cur, prev, 1e-9) {
			t.Fatal("Theorem 4.1 violated over real TCP: ranks decreased")
		}
		prev = cur
	}
	// And bounded by the centralized fixed point (Theorem 4.2).
	if !vecmath.Dominates(cl.Reference, prev, 1e-9) {
		t.Fatal("Theorem 4.2 violated over real TCP: ranks exceeded R*")
	}
}

func TestConfigValidation(t *testing.T) {
	g := genGraph(t, 300, 9)
	if _, err := StartCluster(g, ClusterConfig{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := StartCluster(nil, ClusterConfig{K: 2}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Listen("127.0.0.1:0", Config{}); err == nil {
		t.Error("nil group accepted")
	}
	cl, err := StartCluster(g, ClusterConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	grp := cl.Peers[0]
	_ = grp
	bad := []Config{
		{Group: nil},
	}
	for i, cfg := range bad {
		if _, err := Listen("127.0.0.1:0", cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestPeerAccessors(t *testing.T) {
	g := genGraph(t, 500, 11)
	cl, err := StartCluster(g, ClusterConfig{K: 3, MeanWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := cl.Peers[1]
	if p.Group() != 1 {
		t.Fatalf("Group() = %d", p.Group())
	}
	if p.Addr() == "" {
		t.Fatal("empty address")
	}
	time.Sleep(150 * time.Millisecond)
	if p.Loops() == 0 {
		t.Fatal("no loops ran")
	}
	total := int64(0)
	for _, q := range cl.Peers {
		total += q.ChunksSent()
	}
	if total == 0 {
		t.Fatal("no chunks exchanged")
	}
	// Snapshot isolation: mutating the returned vector must not touch
	// peer state.
	r := p.Ranks()
	if len(r) > 0 {
		r[0] = 1e9
		if p.Ranks()[0] == 1e9 {
			t.Fatal("Ranks() returned live state")
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	g := genGraph(t, 300, 13)
	cl, err := StartCluster(g, ClusterConfig{K: 2, MeanWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close() // second close must not panic or hang
}

func TestStartIdempotent(t *testing.T) {
	g := genGraph(t, 300, 15)
	cl, err := StartCluster(g, ClusterConfig{K: 2, MeanWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Peers[0].Start() // second start is a no-op
	time.Sleep(50 * time.Millisecond)
}

func TestIndirectClusterConverges(t *testing.T) {
	cfg := webgraph.DefaultGenConfig(1500)
	cfg.Sites = 30 // spread traffic across many ranker pairs
	cfg.Seed = 17
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := StartCluster(g, ClusterConfig{
		Params: dprcore.Params{Alg: dprcore.DPR1},
		K:      40, MeanWait: 10 * time.Millisecond, Indirect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(1e-5, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// With 40 peers the Pastry leaf set (16) no longer spans the ring,
	// so some routes take ≥2 hops and somebody must have relayed
	// foreign chunks.
	var relayed int64
	for _, p := range cl.Peers {
		relayed += p.ChunksRelayed()
	}
	if relayed == 0 {
		t.Fatal("indirect cluster never relayed a chunk")
	}
}

func TestDirectClusterNeverRelays(t *testing.T) {
	g := genGraph(t, 800, 19)
	cl, err := StartCluster(g, ClusterConfig{Params: dprcore.Params{Alg: dprcore.DPR1}, K: 4, MeanWait: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(300 * time.Millisecond)
	for i, p := range cl.Peers {
		if p.ChunksRelayed() != 0 {
			t.Fatalf("direct peer %d relayed %d chunks", i, p.ChunksRelayed())
		}
	}
}

func TestCodecWireCluster(t *testing.T) {
	g := genGraph(t, 1000, 21)
	for _, cd := range []transport.ChunkCodec{codec.Plain{}, codec.Delta{}, codec.NewQuantized(20)} {
		cl, err := StartCluster(g, ClusterConfig{
			Params: dprcore.Params{Alg: dprcore.DPR1},
			K:      4, MeanWait: 8 * time.Millisecond, Codec: cd,
		})
		if err != nil {
			t.Fatalf("%s: %v", cd.Name(), err)
		}
		if err := cl.WaitConverged(1e-4, 30*time.Second); err != nil {
			cl.Close()
			t.Fatalf("%s: %v", cd.Name(), err)
		}
		cl.Close()
	}
}

func TestCodecWireIndirectCluster(t *testing.T) {
	cfg := webgraph.DefaultGenConfig(1200)
	cfg.Sites = 25
	cfg.Seed = 23
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := StartCluster(g, ClusterConfig{
		Params: dprcore.Params{Alg: dprcore.DPR1},
		K:      32, MeanWait: 10 * time.Millisecond,
		Indirect: true, Codec: codec.Delta{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.WaitConverged(1e-4, 30*time.Second); err != nil {
		t.Fatal(err)
	}
}
