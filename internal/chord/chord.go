// Package chord implements the Chord structured overlay (Stoica et al.,
// SIGCOMM 2001) behind the same surface as package pastry: finger
// tables, successor lists, and greedy closest-preceding-finger routing
// with its ~½·log₂(N) hop counts.
//
// The paper runs on Pastry but cites Chord, CAN, and Tapestry as equal
// substrates; this second overlay exists to demonstrate (and test) that
// the distributed page-ranking layer is overlay-agnostic. As in package
// pastry, membership changes repair state with an oracle rebuild — the
// state Chord's stabilization protocol converges to.
package chord

import (
	"fmt"
	"sort"

	"p2prank/internal/nodeid"
)

// Config parameterizes the overlay.
type Config struct {
	// SuccessorListLen is the number of immediate successors each node
	// tracks (fault tolerance and the last routing step). Default 8.
	SuccessorListLen int
}

// DefaultConfig returns Chord's standard parameters.
func DefaultConfig() Config { return Config{SuccessorListLen: 8} }

func (c *Config) validate() error {
	if c.SuccessorListLen == 0 {
		c.SuccessorListLen = 8
	}
	if c.SuccessorListLen < 1 {
		return fmt.Errorf("chord: SuccessorListLen %d must be positive", c.SuccessorListLen)
	}
	return nil
}

type state struct {
	// fingers[k] is the node index of successor(id + 2^k), deduplicated
	// to -1 when equal to the previous finger.
	fingers []int
	// succs is the successor list, nearest first.
	succs []int
	pred  int
}

// Overlay is a Chord ring over a fixed membership.
type Overlay struct {
	cfg    Config
	ids    []nodeid.ID
	alive  []bool
	nodes  []state
	sorted []int
	nLive  int
}

// New builds a Chord overlay over the given node IDs, all live.
func New(ids []nodeid.ID, cfg Config) (*Overlay, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("chord: no nodes")
	}
	seen := make(map[nodeid.ID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("chord: duplicate node ID %s", id)
		}
		seen[id] = true
	}
	o := &Overlay{
		cfg:   cfg,
		ids:   append([]nodeid.ID(nil), ids...),
		alive: make([]bool, len(ids)),
	}
	for i := range o.alive {
		o.alive[i] = true
	}
	o.rebuild()
	return o, nil
}

// NumNodes returns the total membership, live or dead.
func (o *Overlay) NumNodes() int { return len(o.ids) }

// NumLive returns the number of live nodes.
func (o *Overlay) NumLive() int { return o.nLive }

// NodeID returns node i's ring identifier.
func (o *Overlay) NodeID(i int) nodeid.ID { return o.ids[i] }

// Alive reports whether node i is live.
func (o *Overlay) Alive(i int) bool { return o.alive[i] }

// Fail marks node i dead and repairs routing state.
func (o *Overlay) Fail(i int) error {
	if !o.alive[i] {
		return nil
	}
	if o.nLive == 1 {
		return fmt.Errorf("chord: cannot fail the last live node")
	}
	o.alive[i] = false
	o.rebuild()
	return nil
}

// Recover marks node i live again and repairs routing state.
func (o *Overlay) Recover(i int) {
	if o.alive[i] {
		return
	}
	o.alive[i] = true
	o.rebuild()
}

// Join adds a new node with the given ID and returns its index.
func (o *Overlay) Join(id nodeid.ID) (int, error) {
	for _, existing := range o.ids {
		if existing == id {
			return 0, fmt.Errorf("chord: duplicate node ID %s", id)
		}
	}
	o.ids = append(o.ids, id)
	o.alive = append(o.alive, true)
	o.rebuild()
	return len(o.ids) - 1, nil
}

func (o *Overlay) rebuild() {
	o.sorted = o.sorted[:0]
	for i, a := range o.alive {
		if a {
			o.sorted = append(o.sorted, i)
		}
	}
	o.nLive = len(o.sorted)
	sort.Slice(o.sorted, func(a, b int) bool {
		return o.ids[o.sorted[a]].Cmp(o.ids[o.sorted[b]]) < 0
	})
	if cap(o.nodes) < len(o.ids) {
		o.nodes = make([]state, len(o.ids))
	}
	o.nodes = o.nodes[:len(o.ids)]
	for i := range o.nodes {
		o.nodes[i] = state{pred: -1}
	}
	n := o.nLive
	succN := o.cfg.SuccessorListLen
	if succN > n-1 {
		succN = n - 1
	}
	for pos, idx := range o.sorted {
		st := &o.nodes[idx]
		st.pred = o.sorted[(pos-1+n)%n]
		st.succs = make([]int, 0, succN)
		for k := 1; k <= succN; k++ {
			st.succs = append(st.succs, o.sorted[(pos+k)%n])
		}
		st.fingers = make([]int, nodeid.Bits)
		prev := -1
		for k := 0; k < nodeid.Bits; k++ {
			target := o.ids[idx].AddPow2(k)
			f := o.successorOf(target)
			if f == prev || f == idx {
				st.fingers[k] = -1
				continue
			}
			st.fingers[k] = f
			prev = f
		}
	}
}

// successorOf returns the first live node clockwise from key (the node
// whose ID is ≥ key, wrapping).
func (o *Overlay) successorOf(key nodeid.ID) int {
	n := o.nLive
	pos := sort.Search(n, func(i int) bool {
		return o.ids[o.sorted[i]].Cmp(key) >= 0
	})
	return o.sorted[pos%n]
}

// Owner returns the live node responsible for key: Chord assigns a key
// to its successor.
func (o *Overlay) Owner(key nodeid.ID) int { return o.successorOf(key) }

// NextHop implements Chord's greedy routing: if self owns the key stop;
// if the key falls between self and a successor-list entry jump straight
// to it; otherwise forward to the closest preceding finger.
func (o *Overlay) NextHop(i int, key nodeid.ID) int {
	if !o.alive[i] {
		panic(fmt.Sprintf("chord: NextHop from dead node %d", i))
	}
	st := &o.nodes[i]
	self := o.ids[i]
	if o.nLive == 1 {
		return i
	}
	// Self owns key when key ∈ (pred, self].
	if nodeid.BetweenIncl(key, o.ids[st.pred], self) {
		return i
	}
	// Successor-list shortcut: first list entry at or past the key.
	prev := self
	for _, s := range st.succs {
		if nodeid.BetweenIncl(key, prev, o.ids[s]) {
			return s
		}
		prev = o.ids[s]
	}
	// Closest preceding finger: highest finger strictly inside
	// (self, key).
	for k := len(st.fingers) - 1; k >= 0; k-- {
		f := st.fingers[k]
		if f < 0 || !o.alive[f] {
			continue
		}
		if nodeid.Between(o.ids[f], self, key) {
			return f
		}
	}
	// Fall back to the immediate successor; it is always closer on the
	// ring.
	return st.succs[0]
}

// Neighbors returns node i's overlay links: predecessor, successor
// list, and fingers, live, deduplicated, and sorted.
func (o *Overlay) Neighbors(i int) []int {
	st := &o.nodes[i]
	set := make(map[int]struct{}, len(st.succs)+len(st.fingers)+1)
	add := func(c int) {
		if c >= 0 && c != i && o.alive[c] {
			set[c] = struct{}{}
		}
	}
	add(st.pred)
	for _, c := range st.succs {
		add(c)
	}
	for _, c := range st.fingers {
		add(c)
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
