package chord

import (
	"fmt"
	"testing"

	"p2prank/internal/nodeid"
	"p2prank/internal/overlay"
	"p2prank/internal/xrand"
)

var _ overlay.Network = (*Overlay)(nil)

func makeIDs(n int) []nodeid.ID {
	ids := make([]nodeid.ID, n)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("chord-node-%d", i))
	}
	return ids
}

func newOverlay(t testing.TB, n int) *Overlay {
	t.Helper()
	o, err := New(makeIDs(n), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func randKeys(n int, seed uint64) []nodeid.ID {
	r := xrand.New(seed)
	keys := make([]nodeid.ID, n)
	for i := range keys {
		keys[i] = nodeid.ID{Hi: r.Uint64(), Lo: r.Uint64()}
	}
	return keys
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("empty membership accepted")
	}
	ids := makeIDs(3)
	ids[1] = ids[2]
	if _, err := New(ids, DefaultConfig()); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := New(makeIDs(2), Config{SuccessorListLen: -1}); err == nil {
		t.Error("negative successor list accepted")
	}
}

func TestOwnerIsSuccessor(t *testing.T) {
	o := newOverlay(t, 64)
	for _, key := range randKeys(200, 3) {
		got := o.Owner(key)
		// Brute force: the live node with the smallest clockwise
		// distance from key.
		best := 0
		for i := 1; i < o.NumNodes(); i++ {
			if nodeid.Distance(key, o.NodeID(i)).Cmp(nodeid.Distance(key, o.NodeID(best))) < 0 {
				best = i
			}
		}
		if got != best {
			t.Fatalf("Owner(%s) = %d, brute force successor is %d", key, got, best)
		}
	}
}

func TestRoutingConvergesEverywhere(t *testing.T) {
	for _, n := range []int{1, 2, 3, 9, 33, 150} {
		o := newOverlay(t, n)
		if err := overlay.CheckConvergent(o, randKeys(40, uint64(n))); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestOwnerIsFixedPoint(t *testing.T) {
	o := newOverlay(t, 90)
	for _, key := range randKeys(100, 7) {
		own := o.Owner(key)
		if next := o.NextHop(own, key); next != own {
			t.Fatalf("owner %d forwarded key %s to %d", own, key, next)
		}
	}
}

func TestHopsGrowLogarithmically(t *testing.T) {
	rng := xrand.New(5)
	small := newOverlay(t, 32)
	big := newOverlay(t, 512)
	hs, err := overlay.AvgHops(small, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := overlay.AvgHops(big, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if hb <= hs {
		t.Fatalf("hops did not grow: %v (N=32) vs %v (N=512)", hs, hb)
	}
	// ~½log₂N: ≈2.5 at N=32, ≈4.5 at N=512.
	if hb > 7 {
		t.Fatalf("N=512 hops = %v, want ≈4.5", hb)
	}
}

func TestChordSlowerThanPastryWouldBe(t *testing.T) {
	// ½·log₂(1000) ≈ 5 > log₁₆(1000) ≈ 2.5 — Chord takes more hops
	// than Pastry at the same N; this pins the Chord side.
	if testing.Short() {
		t.Skip("slow")
	}
	o := newOverlay(t, 1000)
	h, err := overlay.AvgHops(o, 1500, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if h < 3.5 || h > 7 {
		t.Fatalf("Chord N=1000 hops = %v, want ≈5", h)
	}
}

func TestNeighborsWellFormed(t *testing.T) {
	o := newOverlay(t, 100)
	for i := 0; i < o.NumNodes(); i++ {
		ns := o.Neighbors(i)
		if len(ns) == 0 {
			t.Fatalf("node %d has no neighbors", i)
		}
		for k, c := range ns {
			if c == i || !o.Alive(c) {
				t.Fatalf("node %d bad neighbor %d", i, c)
			}
			if k > 0 && ns[k-1] >= c {
				t.Fatalf("node %d neighbors unsorted: %v", i, ns)
			}
		}
	}
}

func TestFailRecover(t *testing.T) {
	o := newOverlay(t, 50)
	for _, v := range []int{3, 17, 31} {
		if err := o.Fail(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := overlay.CheckConvergent(o, randKeys(30, 11)); err != nil {
		t.Fatalf("after failures: %v", err)
	}
	for _, key := range randKeys(40, 12) {
		if !o.Alive(o.Owner(key)) {
			t.Fatal("dead owner")
		}
	}
	o.Recover(17)
	if err := overlay.CheckConvergent(o, randKeys(30, 13)); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	if o.NumLive() != 48 {
		t.Fatalf("live = %d, want 48", o.NumLive())
	}
}

func TestFailLastNodeRejected(t *testing.T) {
	o := newOverlay(t, 1)
	if err := o.Fail(0); err == nil {
		t.Fatal("failing last node accepted")
	}
}

func TestJoin(t *testing.T) {
	o := newOverlay(t, 15)
	id := nodeid.Hash("chord-late")
	idx, err := o.Join(id)
	if err != nil {
		t.Fatal(err)
	}
	if o.Owner(id) != idx {
		t.Fatalf("new node does not own its own ID")
	}
	if err := overlay.CheckConvergent(o, randKeys(25, 15)); err != nil {
		t.Fatalf("after join: %v", err)
	}
	if _, err := o.Join(id); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestSingleton(t *testing.T) {
	o := newOverlay(t, 1)
	key := randKeys(1, 17)[0]
	if o.Owner(key) != 0 || o.NextHop(0, key) != 0 {
		t.Fatal("singleton routing wrong")
	}
	if len(o.Neighbors(0)) != 0 {
		t.Fatal("singleton has neighbors")
	}
}

func TestNextHopFromDeadPanics(t *testing.T) {
	o := newOverlay(t, 4)
	if err := o.Fail(1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	o.NextHop(1, randKeys(1, 1)[0])
}

func TestRoutesLoopFree(t *testing.T) {
	o := newOverlay(t, 250)
	for _, key := range randKeys(150, 21) {
		p, err := overlay.Route(o, 5, key)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, n := range p {
			if seen[n] {
				t.Fatalf("loop in route %v", p)
			}
			seen[n] = true
		}
		if len(p) > 15 {
			t.Fatalf("route too long: %d hops", len(p)-1)
		}
	}
}

func BenchmarkBuild500(b *testing.B) {
	ids := makeIDs(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(ids, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
