package par

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryShardOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			counts := make([]atomic.Int64, n)
			p.Run(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: shard %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestRunNested(t *testing.T) {
	// A shard that itself calls Run must not deadlock even when every
	// helper is already occupied.
	p := NewPool(2)
	var total atomic.Int64
	p.Run(8, func(i int) {
		p.Run(8, func(j int) { total.Add(1) })
	})
	if total.Load() != 64 {
		t.Fatalf("nested Run executed %d inner shards, want 64", total.Load())
	}
}

func TestRunPanicPropagatesLowestShard(t *testing.T) {
	p := NewPool(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic propagated")
		}
		if r != "shard 3" {
			t.Fatalf("propagated panic %v, want lowest shard's (shard 3)", r)
		}
	}()
	p.Run(16, func(i int) {
		if i >= 3 {
			panic(fmt.Sprintf("shard %d", i))
		}
	})
}

func TestDefaultPoolIsUsable(t *testing.T) {
	var total atomic.Int64
	Default().Run(100, func(i int) { total.Add(int64(i)) })
	if total.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", total.Load())
	}
}

func TestSplitPrefixUniform(t *testing.T) {
	pfx := make([]int64, 101)
	for i := range pfx {
		pfx[i] = int64(i) // weight 1 per row
	}
	b := SplitPrefix(pfx, 4)
	want := []int32{0, 25, 50, 75, 100}
	if len(b) != len(want) {
		t.Fatalf("boundaries %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("boundaries %v, want %v", b, want)
		}
	}
}

func TestSplitPrefixSkewed(t *testing.T) {
	// One row holds nearly all the weight; boundaries must stay strictly
	// increasing and cover [0, n).
	pfx := []int64{0, 1, 2, 1000, 1001, 1002}
	b := SplitPrefix(pfx, 4)
	if b[0] != 0 || b[len(b)-1] != 5 {
		t.Fatalf("boundaries %v do not cover [0,5)", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("boundaries %v not strictly increasing", b)
		}
	}
}

func TestSplitPrefixDegenerate(t *testing.T) {
	if b := SplitPrefix([]int64{0}, 8); len(b) != 1 || b[0] != 0 {
		t.Fatalf("empty split = %v, want [0]", b)
	}
	if b := SplitPrefix([]int64{0, 7}, 8); len(b) != 2 || b[1] != 1 {
		t.Fatalf("single-row split = %v, want [0 1]", b)
	}
	// More shards than rows: every row its own shard, nothing empty.
	pfx := []int64{0, 1, 2, 3}
	b := SplitPrefix(pfx, 16)
	if len(b) != 4 {
		t.Fatalf("split %v, want one shard per row", b)
	}
}

func TestBlocks(t *testing.T) {
	cases := []struct{ n, block, want int }{
		{0, 10, 0}, {1, 10, 1}, {10, 10, 1}, {11, 10, 2}, {100, 7, 15},
	}
	for _, c := range cases {
		if got := Blocks(c.n, c.block); got != c.want {
			t.Fatalf("Blocks(%d,%d) = %d, want %d", c.n, c.block, got, c.want)
		}
	}
}

// TestReductionDeterminism is the package's contract in miniature:
// per-shard partial sums combined in shard order give bit-identical
// results at every worker count.
func TestReductionDeterminism(t *testing.T) {
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1.0 / float64(i+3)
	}
	const block = 2048
	sum := func(p *Pool) float64 {
		nb := Blocks(n, block)
		partials := make([]float64, nb)
		p.Run(nb, func(b int) {
			lo, hi := b*block, (b+1)*block
			if hi > n {
				hi = n
			}
			s := 0.0
			for _, v := range xs[lo:hi] {
				s += v
			}
			partials[b] = s
		})
		total := 0.0
		for _, s := range partials {
			total += s
		}
		return total
	}
	want := sum(NewPool(0))
	for _, workers := range []int{1, 2, 7} {
		if got := sum(NewPool(workers)); got != want {
			t.Fatalf("workers=%d: sum %v differs from serial %v", workers, got, want)
		}
	}
}
