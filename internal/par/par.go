// Package par is the deterministic parallel-compute layer under the
// vecmath kernels and the simulator's compute phases. It provides a
// small fixed worker pool plus shard-boundary helpers, built around one
// rule: parallelism must never change results.
//
// The rule is enforced structurally rather than by testing luck:
//
//   - Work is split into shards at boundaries that are a pure function
//     of the input (NNZ-balanced row spans for a CSR matrix, fixed-size
//     blocks for dense vectors) — never of GOMAXPROCS or pool size.
//   - Each shard writes only shard-private state (disjoint output rows,
//     or its own partial-reduction slot).
//   - Reductions are combined by the caller in shard order, serially,
//     after all shards finish. Floating-point sums therefore associate
//     the same way no matter how many workers ran.
//
// Under those three constraints a computation is bit-identical to its
// single-threaded execution at any worker count, which is what lets
// the simulation results stay a pure function of seed and
// configuration (see DESIGN.md §8).
//
// The pool blocks on channels only — never time.Sleep, never spinning —
// so it is in scope for p2plint's nowallclock analyzer.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of helper goroutines that execute shard
// functions. The zero value is not usable; create one with NewPool or
// use the process-wide Default pool.
//
// Run is safe for concurrent use, including nested use: a shard
// function may itself call Run (on this or another pool). Dispatch to
// helpers is non-blocking, so a fully busy pool degrades to inline
// execution on the caller instead of deadlocking.
type Pool struct {
	workers int
	jobs    chan func()
}

// NewPool returns a pool with the given number of helper goroutines.
// The goroutines live for the life of the process, blocked on a
// channel while idle. workers may be 0: Run then executes everything
// inline on the caller.
func NewPool(workers int) *Pool {
	if workers < 0 {
		workers = 0
	}
	p := &Pool{workers: workers, jobs: make(chan func())}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for fn := range p.jobs {
		fn()
	}
}

// Workers returns the number of helper goroutines.
func (p *Pool) Workers() int { return p.workers }

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide pool, created on first use with
// GOMAXPROCS−1 helpers (the caller of Run is the remaining worker).
// Changing GOMAXPROCS later alters how the scheduler multiplexes the
// helpers, never the results — that is the point of the package.
func Default() *Pool {
	defaultOnce.Do(func() {
		defaultPool = NewPool(runtime.GOMAXPROCS(0) - 1)
	})
	return defaultPool
}

// Run executes fn(shard) for every shard in [0, n) and returns once all
// have completed. Shards may run concurrently; fn must confine writes
// to shard-private state (Package rules above). Shard-to-worker
// assignment is work-stealing and nondeterministic, which is harmless
// because outputs are placed by shard index, not by worker.
//
// If one or more shards panic, Run re-panics on the caller with the
// panic value of the lowest-numbered panicking shard, after every
// shard has finished — deterministic even when several fail at once.
func (p *Pool) Run(n int, fn func(shard int)) {
	if n <= 0 {
		return
	}
	if n == 1 || p.workers == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		panicked atomic.Bool
		panics   = make([]any, n)
	)
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			runShard(fn, i, panics, &panicked)
		}
	}
	var wg sync.WaitGroup
	helpers := p.workers
	if helpers > n-1 {
		helpers = n - 1
	}
	job := func() {
		defer wg.Done()
		work()
	}
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		select {
		case p.jobs <- job:
		default:
			// Every helper is busy (e.g. a nested Run from inside a
			// shard). Fall back to inline execution rather than block:
			// the caller drains all remaining shards itself.
			wg.Done()
			i = helpers
		}
	}
	work()
	wg.Wait()
	if panicked.Load() {
		for _, pv := range panics {
			if pv != nil {
				panic(pv)
			}
		}
	}
}

// runShard isolates the recover so a shard panic is recorded instead of
// killing a worker goroutine.
func runShard(fn func(int), i int, panics []any, panicked *atomic.Bool) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
			panicked.Store(true)
		}
	}()
	fn(i)
}

// SplitPrefix splits the rows [0, len(pfx)-1) into at most maxShards
// contiguous spans of roughly equal weight, where pfx is a
// nondecreasing prefix-weight array (pfx[i] = total weight of rows
// before i; a CSR RowPtr is exactly this for NNZ weighting). The
// returned boundaries b satisfy b[0] = 0, b[len(b)-1] = n, and are
// strictly increasing — empty shards are elided ([0] alone for n = 0).
// The split is a pure function of pfx and maxShards.
func SplitPrefix(pfx []int64, maxShards int) []int32 {
	n := len(pfx) - 1
	if n <= 0 {
		return []int32{0}
	}
	if maxShards < 1 {
		maxShards = 1
	}
	total := pfx[n] - pfx[0]
	b := make([]int32, 1, maxShards+1)
	b[0] = 0
	prev := 0
	for s := 1; s < maxShards && prev < n; s++ {
		target := pfx[0] + (total*int64(s)+int64(maxShards)-1)/int64(maxShards)
		// First row index > prev whose prefix weight reaches the target.
		lo, hi := prev+1, n
		for lo < hi {
			mid := (lo + hi) / 2
			if pfx[mid] >= target {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo > prev && lo < n {
			b = append(b, int32(lo))
			prev = lo
		}
	}
	if prev < n {
		b = append(b, int32(n))
	}
	return b
}

// Blocks returns the number of fixed-size blocks covering [0, n):
// ⌈n/block⌉, at least 1 for n > 0. Dense-vector reductions use this
// with a constant block size so the partial-sum tree — and therefore
// every low bit of the result — is independent of worker count.
func Blocks(n, block int) int {
	if n <= 0 {
		return 0
	}
	return (n + block - 1) / block
}
